"""Intra-cell sharding and event-driven wakeup tests.

The hard guarantees under test:

* sharding never changes bytes — a cell split into chunk sub-jobs
  across any chunk size, worker count, or interleaving (including a
  SIGKILLed worker mid-chunk) merges into an envelope byte-identical
  to the one an in-process run writes;
* exactly one merger — the queue's in-transaction last-child check and
  the store's per-key flock make the worker/client merge race safe;
* a terminal chunk failure fails the whole cell, never leaves orphan
  work behind;
* the notify channel wakes idle workers and waiting clients without
  waiting out the poll interval, and degrades to polling when disabled;
* queue writes ride out SQLITE_BUSY with bounded retries, and finished
  rows are pruned after their retention window.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro.harness.cache import ResultCache
from repro.harness.chunkrunner import DEFAULT_RUNNER, shard_ranges
from repro.harness.experiment import ExperimentSpec
from repro.harness.sweep import sweep
from repro.service import (
    Job,
    JobQueue,
    NotifyChannel,
    Scheduler,
    ServiceClient,
    SharedResultStore,
    Worker,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")


def spec(**kw):
    kw.setdefault("platform", "intel-9700kf")
    kw.setdefault("workload", "nbody")
    kw.setdefault("reps", 6)
    kw.setdefault("seed", 42)
    return ExperimentSpec(**kw)


def submit_sharded(queue, key, chunks, **kw):
    kw.setdefault("spec", {"k": key})
    kw.setdefault("noise", None)
    kw.setdefault("label", key)
    return queue.submit_sharded(key, chunks=chunks, **kw)


# ----------------------------------------------------------------------
class TestShardRanges:
    def test_partitions_in_order(self):
        for reps in (1, 2, 5, 7, 12, 16):
            for shard in (1, 2, 3, 5, 16, 100):
                spans = shard_ranges(reps, shard)
                flat = [i for r in spans for i in r]
                assert flat == list(range(reps)), (reps, shard)
                assert all(len(r) <= shard for r in spans)

    def test_rejects_empty_cell(self):
        with pytest.raises(ValueError):
            shard_ranges(0, 4)


# ----------------------------------------------------------------------
class TestShardedQueue:
    def test_parent_and_children_rows(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        assert submit_sharded(q, "a", [(0, 3), (3, 6)]) is True
        assert q.counts() == {
            "queued": 2, "leased": 0, "sharded": 1, "done": 0, "failed": 0,
        "quarantined": 0,
        }
        kids = q.children("a")
        assert [(c.chunk_start, c.chunk_stop) for c in kids] == [(0, 3), (3, 6)]
        assert all(c.parent == "a" for c in kids)
        assert not q.drained(["a"])  # chunk work counts as the parent's

    def test_resubmit_is_deduplicated(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 3), (3, 6)])
        assert submit_sharded(q, "a", [(0, 2), (2, 6)]) is False
        assert len(q.children("a")) == 2  # original carving kept

    def test_degenerate_spans_rejected(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        with pytest.raises(ValueError):
            submit_sharded(q, "a", [])
        with pytest.raises(ValueError):
            submit_sharded(q, "a", [(3, 3)])

    def test_last_chunk_completion_is_flagged_exactly_once(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 2), (2, 4), (4, 6)])
        lasts = []
        for job in q.lease("w1", limit=3):
            last, parent = q.complete_chunk(job.key, "w1")
            assert parent == "a"
            lasts.append(last)
        assert lasts == [False, False, True]
        assert q.finalize_parent("a") is True
        assert q.job("a").status == "done"
        assert q.drained()

    def test_terminal_chunk_failure_fails_parent_and_siblings(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 2), (2, 4), (4, 6)], max_attempts=1)
        (job,) = q.lease("w1")
        q.fail(job.key, "w1", "boom", retryable=False)
        assert q.counts()["sharded"] == 0
        assert q.counts()["queued"] == 0
        assert q.job("a").status == "failed"
        assert "chunk" in q.job("a").error and "boom" in q.job("a").error
        assert q.drained(["a"])

    def test_expired_chunk_lease_past_cap_fails_parent(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 3), (3, 6)], max_attempts=1)
        q.lease("w1", lease_s=0.05)
        time.sleep(0.1)
        q.lease("w2")  # sweeps the expired lease terminally
        assert q.job("a").status == "failed"

    def test_resubmit_whole_after_failed_shard_drops_children(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 3), (3, 6)], max_attempts=1)
        (job,) = q.lease("w1")
        q.fail(job.key, "w1", "boom", retryable=False)
        assert q.submit("a", spec={"k": "a"}, noise=None, label="a") is True
        assert q.job("a").status == "queued"
        assert q.children("a") == []

    def test_resubmit_sharded_after_failure_gets_fresh_children(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 3), (3, 6)], max_attempts=1)
        (job,) = q.lease("w1")
        q.fail(job.key, "w1", "boom", retryable=False)
        assert submit_sharded(q, "a", [(0, 2), (2, 6)]) is True
        assert q.job("a").status == "sharded"
        kids = q.children("a")
        assert [(c.chunk_start, c.chunk_stop) for c in kids] == [(0, 2), (2, 6)]
        assert all(c.status == "queued" for c in kids)


# ----------------------------------------------------------------------
class TestSchedulerShardAffinity:
    def job(self, key, **kw):
        kw.setdefault("spec", {})
        kw.setdefault("noise", None)
        kw.setdefault("label", key)
        kw.setdefault("status", "queued")
        kw.setdefault("priority", 0)
        kw.setdefault("expected_s", 0.0)
        kw.setdefault("cached", False)
        kw.setdefault("attempts", 0)
        kw.setdefault("max_attempts", 3)
        kw.setdefault("submitted_at", 100.0)
        return Job(key=key, **kw)

    def test_in_flight_chunks_beat_fresh_cells(self):
        s = Scheduler()
        fresh = self.job("fresh")
        chunk = self.job("cell:0-3", parent="cell", siblings_active=1)
        idle_chunk = self.job("cold:0-3", parent="cold", siblings_active=0)
        ranked = s.rank([fresh, idle_chunk, chunk], now=100.0)
        assert ranked[0].key == "cell:0-3"

    def test_lease_fills_siblings_active(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "cell", [(0, 2), (2, 4), (4, 6)])
        q.submit("other", spec={"k": "other"}, noise=None, label="other", priority=1)
        (first,) = q.lease("w1", scheduler=Scheduler())
        # Nothing in flight yet: priority wins the first lease.
        assert first.key == "other"
        (second,) = q.lease("w1", scheduler=Scheduler())
        assert second.parent == "cell"
        # One sibling leased now -> the next lease sticks with the cell.
        (third,) = q.lease("w2", scheduler=Scheduler())
        assert third.parent == "cell"
        assert third.siblings_active >= 1


# ----------------------------------------------------------------------
class TestChunkMerge:
    """Property: chunk-wise execution + merge == serial run, bytewise."""

    def golden(self, tmp_path, s):
        cache = ResultCache(tmp_path / "golden")
        rs = cache.get_or_run(s)
        _, _, key = cache.resolve_cell(s, None)
        return rs, cache.entry_path(key).read_bytes()

    @pytest.mark.parametrize("reps,shard", [(5, 1), (6, 2), (7, 3), (12, 5), (9, 16)])
    def test_merge_equals_serial_bytes(self, tmp_path, reps, shard):
        s = spec(reps=reps, seed=reps * 100 + shard)
        golden_rs, golden_bytes = self.golden(tmp_path, s)
        store = SharedResultStore(tmp_path / "store")
        rspec, stack, key = store.resolve_cell(s, None)
        spans = [(r.start, r.stop) for r in shard_ranges(rspec.reps, shard)]
        # Chunks arrive in arbitrary order from arbitrary "workers".
        for start, stop in reversed(spans):
            results = DEFAULT_RUNNER.run(rspec, stack, range(start, stop))
            store.store_chunk(key, start, stop, results)
        merged = store.merge_chunks(rspec, stack, key, spans)
        assert [t.hex() for t in merged.times] == [t.hex() for t in golden_rs.times]
        assert store.entry_path(key).read_bytes() == golden_bytes
        # Chunk files are gone; the envelope serves everyone from now on.
        assert not list(store.root.glob("*.chunk-*.json"))
        assert store.load_entry(key, rspec) is not None

    def test_merge_rejects_bad_partition(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        rspec, stack, key = store.resolve_cell(spec(reps=6), None)
        with pytest.raises(ValueError, match="partition"):
            store.merge_chunks(rspec, stack, key, [(0, 3), (4, 6)])

    def test_merge_missing_chunk_raises(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        rspec, stack, key = store.resolve_cell(spec(reps=6), None)
        results = DEFAULT_RUNNER.run(rspec, stack, range(0, 3))
        store.store_chunk(key, 0, 3, results)
        with pytest.raises(RuntimeError, match="missing or torn"):
            store.merge_chunks(rspec, stack, key, [(0, 3), (3, 6)])

    def test_merge_race_loser_is_served(self, tmp_path):
        store = SharedResultStore(tmp_path / "store")
        rspec, stack, key = store.resolve_cell(spec(reps=4), None)
        for start, stop in ((0, 2), (2, 4)):
            store.store_chunk(
                key, start, stop, DEFAULT_RUNNER.run(rspec, stack, range(start, stop))
            )
        first = store.merge_chunks(rspec, stack, key, [(0, 2), (2, 4)])
        # Second merger (worker vs client race) sees the envelope and
        # never needs the (now deleted) chunk files.
        second = store.merge_chunks(rspec, stack, key, [(0, 2), (2, 4)])
        assert [t.hex() for t in first.times] == [t.hex() for t in second.times]
        assert store.stats()["chunk_merges"] == 1


# ----------------------------------------------------------------------
class TestShardedEndToEnd:
    def parts(self, tmp_path, **client_kw):
        queue = JobQueue(tmp_path / "queue.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client_kw.setdefault("poll_s", 0.01)
        return queue, store, ServiceClient(queue, store, **client_kw)

    def test_sharded_cell_bit_identical_to_in_process(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        s = spec(reps=7, seed=11)
        key = client.submit(s, shard=3)
        assert queue.job(key).status == "sharded"
        assert len(queue.children(key)) == 3
        Worker(queue, store, poll_s=0.01).run(drain=True)
        assert queue.job(key).status == "done"
        rs = client.run_cell(s)
        golden_cache = ResultCache(tmp_path / "golden")
        golden = golden_cache.get_or_run(s)
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]
        _, _, gkey = golden_cache.resolve_cell(s, None)
        assert (
            store.entry_path(key).read_bytes()
            == golden_cache.entry_path(gkey).read_bytes()
        )

    def test_two_workers_share_one_cell(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        s = spec(reps=8, seed=13)
        key = client.submit(s, shard=2)  # 4 chunks
        workers = [
            Worker(queue, store, worker_id=f"w{i}", poll_s=0.01) for i in (1, 2)
        ]
        threads = [
            threading.Thread(target=w.run, kwargs={"drain": True}) for w in workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert queue.job(key).status == "done"
        assert sum(w.stats()["chunks_done"] for w in workers) == 4
        assert sum(w.stats()["merges"] for w in workers) == 1
        golden = ResultCache(tmp_path / "golden").get_or_run(s)
        rs = client.run_cell(s)
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]

    def test_client_merges_when_merging_worker_died(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        s = spec(reps=6, seed=17)
        key = client.submit(s, shard=3)
        rspec, stack, _ = store.resolve_cell(s, None)
        # Simulate workers that published every chunk and completed the
        # queue rows, then died before anyone ran the merge.
        for job in queue.lease("w1", limit=2):
            results = DEFAULT_RUNNER.run(
                rspec, stack, range(job.chunk_start, job.chunk_stop)
            )
            store.store_chunk(key, job.chunk_start, job.chunk_stop, results)
            queue.complete_chunk(job.key, "w1")
        assert queue.job(key).status == "sharded"  # merge never happened
        rs = client.run_cell(s)
        assert client.stats()["client_merges"] == 1
        assert queue.job(key).status == "done"
        golden = ResultCache(tmp_path / "golden").get_or_run(s)
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]

    def test_adaptive_cells_are_never_sharded(self, tmp_path):
        from repro.harness.adaptive import AdaptivePolicy

        queue, store, client = self.parts(tmp_path)
        s = spec(reps=40, adaptive=AdaptivePolicy(target_rel_hw=0.5))
        key = client.submit(s, shard=2)
        assert queue.job(key).status == "queued"
        assert queue.children(key) == []

    def test_store_served_cells_are_never_sharded(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        s = spec(reps=6, seed=19)
        store.get_or_run(s)  # envelope already there
        key = client.submit(s, shard=2)
        assert queue.job(key).status == "queued"  # whole, near-free job
        assert queue.job(key).cached is True
        assert queue.children(key) == []

    def test_client_threshold_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_REPS", "4")
        queue, store, client = self.parts(tmp_path)
        assert client.shard == 4
        key = client.submit(spec(reps=6, seed=23))
        assert queue.job(key).status == "sharded"
        assert len(queue.children(key)) == 2

    def test_sharded_sweep_renders_identically(self, tmp_path):
        queue, store, client = self.parts(tmp_path)
        base = spec(reps=5, seed=29)
        worker = Worker(queue, store, poll_s=0.01)
        t = threading.Thread(target=worker.run, kwargs={"drain": False})
        t.start()
        try:
            result = sweep(base, service=client, shard=2, model=("omp", "sycl"))
        finally:
            worker.stop()
            t.join(timeout=60)
        golden = sweep(
            base, cache=ResultCache(tmp_path / "golden"), model=("omp", "sycl")
        )
        assert result.render() == golden.render()


# ----------------------------------------------------------------------
class TestNotifyChannel:
    def test_notify_wakes_subscriber(self, tmp_path):
        channel = NotifyChannel(tmp_path / "chan")
        if not channel.enabled:
            pytest.skip("no fifo support on this platform")
        with channel.subscribe() as sub:
            assert NotifyChannel(tmp_path / "chan").notify() == 1
            assert sub.wait(5.0) is True
            assert sub.wait(0.0) is False  # drained: no stale wake

    def test_wait_times_out_quietly(self, tmp_path):
        channel = NotifyChannel(tmp_path / "chan")
        with channel.subscribe() as sub:
            t0 = time.monotonic()
            assert sub.wait(0.05) is False
            assert time.monotonic() - t0 < 2.0

    def test_notify_without_subscribers_is_a_noop(self, tmp_path):
        assert NotifyChannel(tmp_path / "chan").notify() == 0

    def test_disabled_channel_polls_a_probe(self, tmp_path):
        ticks = iter(range(100))
        channel = NotifyChannel(tmp_path / "chan", enabled=False)
        sub = channel.subscribe(probe=lambda: next(ticks))
        assert sub.wait(2.0) is True  # probe value changed
        sub.close()
        assert channel.notify() == 0

    def test_stale_fifo_is_reaped(self, tmp_path):
        channel = NotifyChannel(tmp_path / "chan")
        if not channel.enabled:
            pytest.skip("no fifo support on this platform")
        dead = tmp_path / "chan" / "99999-0.fifo"
        dead.parent.mkdir(parents=True, exist_ok=True)
        os.mkfifo(dead)
        os.utime(dead, (time.time() - 120, time.time() - 120))
        channel.notify()
        assert not dead.exists()

    def test_fresh_readerless_fifo_survives_notify(self, tmp_path):
        channel = NotifyChannel(tmp_path / "chan")
        if not channel.enabled:
            pytest.skip("no fifo support on this platform")
        young = tmp_path / "chan" / "99999-1.fifo"
        young.parent.mkdir(parents=True, exist_ok=True)
        os.mkfifo(young)  # a live subscriber mid-open looks like this
        channel.notify()
        assert young.exists()

    def test_worker_and_client_wake_without_polling(self, tmp_path):
        """With poll intervals far beyond the runtime, only event wakes
        can finish the round trip quickly."""
        queue = JobQueue(tmp_path / "queue.sqlite")
        if not queue.notify_submit.enabled:
            pytest.skip("no fifo support on this platform")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store, poll_s=30.0)
        worker = Worker(queue, store, poll_s=30.0)
        t = threading.Thread(target=worker.run, kwargs={"drain": False})
        t.start()
        try:
            time.sleep(0.2)  # worker parks on the submit channel
            t0 = time.monotonic()
            key = client.submit(spec(reps=2, seed=31))
            client.wait([key], timeout=25.0)
            elapsed = time.monotonic() - t0
        finally:
            worker.stop()
            queue.notify_submit.notify()  # unblock the idle park
            t.join(timeout=60)
        assert queue.job(key).status == "done"
        assert elapsed < 20.0  # well under one 30 s poll period
        assert worker.stats()["notify_wakes"] >= 1
        assert client.stats()["notify_wakes"] >= 1


# ----------------------------------------------------------------------
class TestBusyRetry:
    def test_write_txn_rides_out_a_lock_holder(self, tmp_path):
        path = tmp_path / "q.sqlite"
        q = JobQueue(path, busy_timeout_s=0.02, busy_retries=50)
        before = q.stats()["busy_retries"]

        def hold_then_release():
            blocker = sqlite3.connect(
                path, isolation_level=None, check_same_thread=False
            )
            blocker.execute("BEGIN IMMEDIATE")
            held.set()
            time.sleep(0.3)
            blocker.execute("COMMIT")
            blocker.close()

        held = threading.Event()
        t = threading.Thread(target=hold_then_release)
        t.start()
        try:
            held.wait(10.0)
            assert q.submit("a", spec={}, noise=None, label="a") is True
        finally:
            t.join()
        assert q.stats()["busy_retries"] > before
        assert q.counts()["queued"] == 1

    def test_retries_are_bounded(self, tmp_path):
        path = tmp_path / "q.sqlite"
        q = JobQueue(path, busy_timeout_s=0.01, busy_retries=2)
        blocker = sqlite3.connect(path, isolation_level=None)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            with pytest.raises(sqlite3.OperationalError):
                q.submit("a", spec={}, noise=None, label="a")
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()


# ----------------------------------------------------------------------
class TestPrune:
    def fill(self, q):
        q.submit("done1", spec={}, noise=None, label="d")
        (job,) = q.lease("w1")
        q.complete(job.key, "w1")
        q.submit("live", spec={}, noise=None, label="l")

    def test_prune_drops_old_finished_rows_only(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        self.fill(q)
        time.sleep(0.02)
        assert q.prune(older_than_s=3600.0) == 0  # inside the window
        assert q.prune(older_than_s=0.0) == 1
        assert q.job("done1") is None
        assert q.job("live").status == "queued"
        assert q.stats()["pruned"] >= 1

    def test_prune_takes_children_with_parent(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "cell", [(0, 3), (3, 6)])
        for job in q.lease("w1", limit=2):
            q.complete_chunk(job.key, "w1")
        q.finalize_parent("cell")
        time.sleep(0.02)
        assert q.prune(older_than_s=0.0) == 3  # parent + 2 chunks
        assert q.job("cell") is None and q.children("cell") == []

    def test_prune_spares_parents_with_active_children(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "cell", [(0, 3), (3, 6)], max_attempts=1)
        (job,) = q.lease("w1")
        q.fail(job.key, "w1", "boom", retryable=False)
        # Parent is failed, but one sibling is still leasable?  No —
        # terminal chunk failure failed the queued sibling too, so the
        # whole family is prunable.
        time.sleep(0.02)
        assert q.prune(older_than_s=0.0) == 3

    def test_window_from_environment(self, tmp_path, monkeypatch):
        q = JobQueue(tmp_path / "q.sqlite")
        self.fill(q)
        time.sleep(0.02)
        monkeypatch.setenv("REPRO_PRUNE_S", "0")
        assert q.prune() == 1


# ----------------------------------------------------------------------
_KILLABLE_WORKER = textwrap.dedent(
    """
    import sys
    from pathlib import Path
    sys.path.insert(0, {src!r})
    from repro.service import JobQueue, SharedResultStore, Worker
    worker = Worker(
        JobQueue(Path({queue!r})),
        SharedResultStore(Path({store!r})),
        worker_id="victim",
        lease_s=1.0,
        poll_s=0.02,
    )
    worker.run(drain=True)
    """
)


class TestKilledWorkerMidShard:
    def test_sigkill_mid_chunk_then_bit_identical_merge(self, tmp_path):
        """The acceptance scenario: shard one cell, SIGKILL a worker
        while it holds a chunk lease, drain with a second worker, and
        require the merged envelope to be byte-identical to an
        uninterrupted in-process run."""
        queue = JobQueue(tmp_path / "queue.sqlite")
        store = SharedResultStore(tmp_path / "store")
        client = ServiceClient(queue, store, poll_s=0.01)
        s = spec(
            workload="minife", workload_params={"cg_iters": 40}, reps=12, seed=3
        )
        key = client.submit(s, shard=3)
        assert queue.job(key).status == "sharded"
        assert len(queue.children(key)) == 4

        script = _KILLABLE_WORKER.format(
            src=SRC,
            queue=str(tmp_path / "queue.sqlite"),
            store=str(tmp_path / "store"),
        )
        proc = subprocess.Popen([sys.executable, "-c", script])
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if any(j.parent == key for j in queue.jobs("leased")):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("victim worker never leased a chunk")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        orphaned = [j for j in queue.jobs("leased") if j.parent == key]
        assert orphaned, "chunk should still look leased right after the kill"

        Worker(queue, store, worker_id="rescuer", poll_s=0.05).run(drain=True)
        assert queue.counts()["failed"] == 0
        assert queue.job(key).status == "done"
        assert all(c.status == "done" for c in queue.children(key))
        rekeyed = {j.key: j for j in queue.jobs()}
        assert rekeyed[orphaned[0].key].attempts == 2

        rs = client.run_cell(s)
        golden_cache = ResultCache(tmp_path / "golden")
        golden = golden_cache.get_or_run(s)
        assert [t.hex() for t in rs.times] == [t.hex() for t in golden.times]
        _, _, gkey = golden_cache.resolve_cell(s, None)
        assert (
            store.entry_path(key).read_bytes()
            == golden_cache.entry_path(gkey).read_bytes()
        )
