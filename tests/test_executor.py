"""Tests for the pluggable execution backends.

The load-bearing property is **worker-invariant determinism**:
``times[i]`` / ``anomalies[i]`` must be bit-identical for jobs=1,
jobs=4, and any chunk size — seeds derive from per-rep spawn keys and
results are written back by rep index.
"""

import pickle

import numpy as np
import pytest

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.harness.executor import (
    ParallelExecutor,
    RepResult,
    SerialExecutor,
    chunk_indices,
    chunk_range,
    get_executor,
    rep_seed,
    resolve_chunk_size,
    resolve_jobs,
)
from repro.harness.experiment import ExperimentSpec, run_experiment


def spec(**kw):
    defaults = dict(platform="intel-9700kf", workload="nbody", model="omp", reps=6, seed=42)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


def tiny_config():
    return NoiseConfig(
        {
            cpu: [
                ConfigEvent(
                    start=0.01 * (cpu + 1),
                    duration=2e-3,
                    policy="SCHED_FIFO",
                    rt_priority=90,
                    weight=1.0,
                    etype=EventType.IRQ,
                    source="test",
                )
            ]
            for cpu in range(4)
        }
    )


@pytest.fixture(scope="module")
def pool4():
    ex = ParallelExecutor(4)
    yield ex
    ex.close()


# ----------------------------------------------------------------------
# seeding and chunking primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_rep_seed_matches_seedsequence_spawn(self):
        parent = np.random.SeedSequence(2025)
        for i, child in enumerate(parent.spawn(8)):
            a = np.random.default_rng(child).random(4)
            b = np.random.default_rng(rep_seed(2025, i)).random(4)
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("reps,jobs,chunk_size", [(10, 4, None), (10, 4, 1), (10, 4, 3), (1, 4, None), (5, 8, None), (7, 2, 100)])
    def test_chunks_partition_exactly(self, reps, jobs, chunk_size):
        chunks = chunk_indices(reps, jobs, chunk_size)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(reps))

    def test_zero_reps_no_chunks(self):
        assert chunk_indices(0, 4) == []

    def test_chunks_partition_property(self):
        """Property sweep: for every (reps, jobs, chunk_size) combination
        the chunks are non-empty, in-order, contiguous ranges that
        partition ``range(reps)`` exactly — chunking can never drop,
        duplicate, or reorder a rep."""
        for reps in (0, 1, 2, 3, 7, 16, 33, 100):
            for jobs in (1, 2, 3, 8, 64):
                for chunk_size in (None, 1, 2, 5, 7, 1000):
                    chunks = chunk_indices(reps, jobs, chunk_size)
                    assert all(len(c) > 0 for c in chunks)
                    assert all(c.step == 1 for c in chunks)
                    flat = [i for c in chunks for i in c]
                    assert flat == list(range(reps)), (reps, jobs, chunk_size)

    def test_chunk_range_offset_windows(self):
        """Adaptive batches dispatch non-zero-based windows."""
        chunks = chunk_range(range(8, 14), 2, None)
        assert [i for c in chunks for i in c] == list(range(8, 14))

    def test_chunk_degenerate_inputs_fail_loudly(self):
        with pytest.raises(ValueError):
            chunk_indices(4, 0)
        with pytest.raises(ValueError):
            chunk_indices(4, -1)
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(4, 2, chunk_size=0)
        with pytest.raises(ValueError):
            chunk_indices(4, 2, chunk_size=-3)
        with pytest.raises(ValueError):
            chunk_range(range(0, 8, 2), 2)  # non-unit step

    def test_oversized_chunk_is_single_chunk(self):
        assert chunk_indices(5, 4, chunk_size=100) == [range(0, 5)]

    def test_resolve_chunk_size_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "3")
        assert resolve_chunk_size() == 3
        assert resolve_chunk_size(5) == 5  # explicit wins
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "0")
        assert resolve_chunk_size() is None  # 0 = automatic
        monkeypatch.delenv("REPRO_CHUNK_SIZE")
        assert resolve_chunk_size() is None

    def test_resolve_chunk_size_rejects_bad_values(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_chunk_size(0)
        with pytest.raises(ValueError):
            resolve_chunk_size(-2)
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "-1")
        with pytest.raises(ValueError):
            resolve_chunk_size()

    def test_env_chunk_size_drives_dispatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "2")
        assert chunk_indices(6, 4) == [range(0, 2), range(2, 4), range(4, 6)]

    def test_resolve_jobs_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_resolve_jobs_zero_means_cpu_count(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_resolve_jobs_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_get_executor_serial_for_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert isinstance(get_executor(), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)

    def test_get_executor_shares_pools(self):
        a = get_executor(2)
        b = get_executor(2)
        assert a is b and isinstance(a, ParallelExecutor) and a.jobs == 2

    def test_shared_executor_survives_other_callers_close(self):
        """Regression: ``with get_executor(n):`` in one caller must not
        shut down the warm pool other callers still hold."""
        ex = get_executor(2)
        run_experiment(spec(reps=4), executor=ex)  # warm the pool
        pool = ex._pool
        assert pool is not None
        with get_executor(2) as same:
            assert same is ex
        assert ex._pool is pool  # __exit__ did not tear it down
        ex.close()
        assert ex._pool is pool  # explicit close() is a no-op too
        rs = run_experiment(spec(reps=4), executor=ex)
        assert len(rs.times) == 4

    def test_private_executor_close_still_real(self):
        ex = ParallelExecutor(2)
        run_experiment(spec(reps=2), executor=ex)
        ex.close()
        assert ex._pool is None


# ----------------------------------------------------------------------
# worker-invariant determinism
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_baseline_parallel_bitwise_equal(self, pool4):
        s = spec(reps=8)
        serial = run_experiment(s, executor=SerialExecutor())
        parallel = run_experiment(s, executor=pool4)
        np.testing.assert_array_equal(serial.times, parallel.times)
        assert serial.anomalies == parallel.anomalies

    def test_injected_parallel_bitwise_equal(self, pool4):
        s = spec(workload="babelstream", reps=6, seed=7)
        config = tiny_config()
        serial = run_experiment(s, noise_config=config, executor=SerialExecutor())
        parallel = run_experiment(s, noise_config=config, executor=pool4)
        np.testing.assert_array_equal(serial.times, parallel.times)
        assert serial.anomalies == parallel.anomalies
        assert parallel.injected

    def test_composite_stack_worker_invariant(self):
        """A heterogeneous NoiseStack (replay + I/O + memory + ambient)
        stays bit-identical across backends and worker counts: each
        source draws from a per-rep, per-source child RNG."""
        from repro.extensions.ionoise import IoBurst, IoNoiseConfig
        from repro.noise import (
            BackgroundNoiseSource,
            HpasMemoryBandwidthSource,
            IoNoiseSource,
            NoiseStack,
            TraceReplaySource,
        )

        stack = NoiseStack(
            [
                TraceReplaySource(tiny_config()),
                IoNoiseSource(IoNoiseConfig([IoBurst(start=0.01, duration=0.1, irq_cpus=(0, 1))])),
                HpasMemoryBandwidthSource(start=0.0, duration=0.15, bandwidth_gbs=12.0),
                BackgroundNoiseSource.preset("desktop-nogui", intensity=0.5),
            ]
        )
        s = spec(workload="schedbench", reps=6, seed=13)
        serial = run_experiment(s, noise=stack, executor=SerialExecutor())
        assert serial.injected
        for jobs in (2, 3, 4):
            ex = ParallelExecutor(jobs)
            try:
                rs = run_experiment(s, noise=stack, executor=ex)
            finally:
                ex.close()
            np.testing.assert_array_equal(serial.times, rs.times)
            assert serial.anomalies == rs.anomalies

    def test_chunk_size_invariance(self):
        s = spec(reps=5, seed=3)
        reference = run_experiment(s, executor=SerialExecutor())
        for chunk_size in (1, 2, 100):
            ex = ParallelExecutor(2, chunk_size=chunk_size)
            try:
                rs = run_experiment(s, executor=ex)
            finally:
                ex.close()
            np.testing.assert_array_equal(reference.times, rs.times)

    def test_env_selected_backend_equivalent(self, monkeypatch):
        s = spec(reps=4, seed=9)
        serial = run_experiment(s, executor=SerialExecutor())
        monkeypatch.setenv("REPRO_JOBS", "2")
        rs = run_experiment(s)
        np.testing.assert_array_equal(serial.times, rs.times)


# ----------------------------------------------------------------------
# chunking edge cases through the real backend
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_fewer_reps_than_jobs(self, pool4):
        s = spec(reps=2)
        serial = run_experiment(s, executor=SerialExecutor())
        parallel = run_experiment(s, executor=pool4)
        np.testing.assert_array_equal(serial.times, parallel.times)

    def test_single_rep(self, pool4):
        s = spec(reps=1)
        serial = run_experiment(s, executor=SerialExecutor())
        parallel = run_experiment(s, executor=pool4)
        np.testing.assert_array_equal(serial.times, parallel.times)
        assert len(parallel.times) == 1

    def test_on_run_ordered_posthoc_delivery(self, pool4):
        s = spec(reps=5)
        seen = []
        run_experiment(s, on_run=lambda i, r: seen.append((i, r.trace is not None)), executor=pool4)
        assert seen == [(i, True) for i in range(5)]

    def test_on_run_without_tracing(self, pool4):
        s = spec(reps=3, tracing=False)
        seen = []
        run_experiment(s, on_run=lambda i, r: seen.append(r.trace), executor=pool4)
        assert seen == [None, None, None]


# ----------------------------------------------------------------------
# pickling (the worker boundary)
# ----------------------------------------------------------------------
class TestPickling:
    def test_spec_round_trip(self):
        s = spec(workload_params={"iters": 3}, n_threads=4, anomaly_prob=0.5)
        assert pickle.loads(pickle.dumps(s)) == s

    def test_noise_config_round_trip(self):
        config = tiny_config()
        clone = pickle.loads(pickle.dumps(config))
        assert clone.to_json(indent=0) == config.to_json(indent=0)

    def test_rep_result_round_trip(self):
        rr = RepResult(index=3, exec_time=1.25, anomaly="thermal", run=None)
        assert pickle.loads(pickle.dumps(rr)) == rr
