"""Shared case matrix for the adaptive-rep fixture suite.

Adaptive early stopping carries its own determinism contract: same
spec + seed + policy → same rep count and bit-identical per-rep times,
at any worker count or chunk size.  This module defines the reference
policy and case subset — ``tools/gen_adaptive_fixtures.py`` records
them into ``tests/fixtures/adaptive_reps.json`` and
``tests/test_adaptive.py`` replays the fixtures serial and parallel.

The subset deliberately mixes convergence behaviours under the
reference policy (±2 % target, batches of 8, budget 40): low-variance
cells that stop at ``min_reps``, a mid-schedule stop, and noisy cells
that exhaust the full budget.
"""

from __future__ import annotations

from repro.harness.adaptive import ADAPTIVE_FIXTURE_VERSION, AdaptivePolicy
from tests.golden_cases import _noise, build_cases

__all__ = [
    "ADAPTIVE_FIXTURE_PATH",
    "FIXTURE_POLICY",
    "FIXTURE_BUDGET",
    "build_adaptive_cases",
    "run_adaptive_case",
    "ADAPTIVE_FIXTURE_VERSION",
]

ADAPTIVE_FIXTURE_PATH = "tests/fixtures/adaptive_reps.json"

#: the reference stop rule all fixtures are recorded under
FIXTURE_POLICY = AdaptivePolicy(target_rel_hw=0.02, min_reps=8, batch=8, n_boot=300)

#: fixed-rep budget the policy may stop short of
FIXTURE_BUDGET = 40

#: golden-case names in the adaptive subset (see module docstring)
_CASE_NAMES = (
    "intel-schedbench-static",   # stops at min_reps
    "intel-nbody",               # stops at min_reps
    "intel-babelstream-mem",     # mid-schedule stop
    "a64fx-minife",              # runs to budget
    "numa-heat",                 # stops at min_reps
    "intel-replay",              # injected cell, stops at min_reps
    "amd-composite-stack",       # injected cell, runs to budget
)


def build_adaptive_cases() -> list[dict]:
    """The golden-case subset the adaptive fixtures are recorded over."""
    by_name = {c["name"]: c for c in build_cases()}
    return [by_name[name] for name in _CASE_NAMES]


def run_adaptive_case(case: dict, executor=None) -> dict:
    """Execute one case under the reference policy; return its signature.

    The signature pins the adaptive contract end to end: how many reps
    ran, whether the cell stopped early, the relative CI half-width at
    the stop decision (exact float hex), and every per-rep time (exact
    float hex).
    """
    from repro.harness.executor import SerialExecutor
    from repro.harness.experiment import ExperimentSpec, run_experiment

    kwargs = {k: v for k, v in case.items() if k not in ("name", "noise")}
    spec = ExperimentSpec(reps=FIXTURE_BUDGET, adaptive=FIXTURE_POLICY, **kwargs)
    rs = run_experiment(
        spec,
        noise=_noise(case.get("noise")),
        executor=executor if executor is not None else SerialExecutor(),
    )
    info = rs.adaptive
    return {
        "name": case["name"],
        "reps_run": info["reps_run"],
        "cap": info["cap"],
        "stopped_early": info["stopped_early"],
        "rel_halfwidth": float(info["rel_halfwidth"]).hex(),
        "times": [float(t).hex() for t in rs.times],
        "anomalies": list(rs.anomalies),
    }
