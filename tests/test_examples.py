"""Example scripts: syntax-check always, execute when opted in.

Running every example takes minutes (they are small studies, not unit
tests); set ``REPRO_RUN_EXAMPLES=1`` to execute them end to end.
"""

import os
import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.skipif(
    os.environ.get("REPRO_RUN_EXAMPLES") != "1",
    reason="set REPRO_RUN_EXAMPLES=1 to execute the example studies",
)
@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"
