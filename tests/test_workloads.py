"""Unit tests for the workload models."""

import pytest

from repro.sim.platform import get_platform
from repro.workloads import Babelstream, MiniFE, NBody, SchedBench, get_workload
from repro.workloads.base import Workload


@pytest.fixture
def intel():
    return get_platform("intel-9700kf")


@pytest.fixture
def amd():
    return get_platform("amd-9950x3d")


class TestConversions:
    def test_compute_seconds(self, intel):
        secs = Workload.compute_seconds(36e9, intel)
        assert secs == pytest.approx(1.0)

    def test_stream_seconds(self, intel):
        secs = Workload.stream_seconds(12.0, intel)
        assert secs == pytest.approx(1.0)

    def test_negative_rejected(self, intel):
        with pytest.raises(ValueError):
            Workload.compute_seconds(-1.0, intel)
        with pytest.raises(ValueError):
            Workload.stream_seconds(-1.0, intel)


class TestRegistry:
    def test_all_names_resolve(self, intel):
        for name in ("nbody", "babelstream", "minife", "schedbench"):
            wl = get_workload(name, intel)
            assert wl.name == name

    def test_unknown_name(self, intel):
        with pytest.raises(KeyError):
            get_workload("hpl", intel)

    def test_per_platform_calibration(self, intel, amd):
        assert get_workload("nbody", amd).n_bodies > get_workload("nbody", intel).n_bodies

    def test_kwargs_override_calibration(self, intel):
        wl = get_workload("nbody", intel, n_bodies=1000)
        assert wl.n_bodies == 1000


class TestNBody:
    def test_region_structure(self, intel):
        wl = NBody(n_bodies=1000, steps=3)
        regions = list(wl.regions(intel, 8))
        # force + serial integrate per step
        assert len(regions) == 6
        assert sum(r.serial for r in regions) == 3

    def test_work_scales_quadratically(self, intel):
        small = NBody(n_bodies=1000, steps=1).total_work(intel)
        big = NBody(n_bodies=2000, steps=1).total_work(intel)
        assert big / small == pytest.approx(4.0, rel=0.05)

    def test_compute_bound_signature(self, intel):
        wl = NBody(n_bodies=1000, steps=1)
        force = next(r for r in wl.regions(intel, 8) if not r.serial)
        assert force.mem_demand < 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NBody(n_bodies=0)
        with pytest.raises(ValueError):
            NBody(steps=0)

    def test_estimate_close_to_ideal(self, intel):
        wl = NBody(n_bodies=10000, steps=5)
        est = wl.estimate_duration(intel, 8)
        assert est == pytest.approx(wl.total_work(intel) / 8, rel=1e-6)


class TestBabelstream:
    def test_five_kernels_per_iteration(self, intel):
        wl = Babelstream(array_mb=10, iters=2)
        regions = list(wl.regions(intel, 8))
        assert len(regions) == 10
        names = {r.name.split("-")[1] for r in regions}
        assert names == {"copy", "mul", "add", "triad", "dot"}

    def test_dot_is_reduction(self, intel):
        wl = Babelstream(array_mb=10, iters=1)
        dot = next(r for r in wl.regions(intel, 8) if "dot" in r.name)
        assert dot.reduction

    def test_three_array_kernels_cost_more(self, intel):
        wl = Babelstream(array_mb=10, iters=1)
        regions = {r.name.split("-")[1]: r for r in wl.regions(intel, 8)}
        assert regions["add"].total_work == pytest.approx(1.5 * regions["copy"].total_work)

    def test_memory_bound_signature(self, intel):
        wl = Babelstream(array_mb=10, iters=1)
        r = next(iter(wl.regions(intel, 8)))
        assert r.mem_demand == intel.core_stream_gbs

    def test_kernel_subset(self, intel):
        wl = Babelstream(array_mb=10, iters=3, kernels=("dot",))
        assert len(list(wl.regions(intel, 8))) == 3

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            Babelstream(kernels=("copy", "warp"))

    def test_estimate_bandwidth_limited(self, intel):
        wl = Babelstream(array_mb=58, iters=100)
        est = wl.estimate_duration(intel, 8)
        total_gb = 100 * 12 * 58 / 1024.0
        assert est == pytest.approx(total_gb / intel.bandwidth_gbs, rel=1e-6)


class TestMiniFE:
    def test_structure(self, intel):
        wl = MiniFE(nx=16, cg_iters=5)
        regions = list(wl.regions(intel, 8))
        # setup + assembly + 5 * (spmv + 2 dots + 3 axpys)
        assert len(regions) == 2 + 5 * 6
        assert regions[0].serial

    def test_spmv_dominates_iteration(self, intel):
        wl = MiniFE(nx=32, cg_iters=1)
        regions = {r.name.rsplit("-", 1)[0]: r for r in wl.regions(intel, 8)}
        assert regions["cg-spmv"].total_work > regions["cg-axpy0"].total_work

    def test_dots_are_reductions(self, intel):
        wl = MiniFE(nx=16, cg_iters=1)
        dots = [r for r in wl.regions(intel, 8) if "dot" in r.name]
        assert len(dots) == 2 and all(r.reduction for r in dots)

    def test_sycl_efficiency_below_one(self, intel):
        # HeCBench's SYCL MiniFE runs well below the OpenMP version.
        wl = MiniFE(nx=16, cg_iters=1)
        spmv = next(r for r in wl.regions(intel, 8) if "spmv" in r.name)
        assert spmv.sycl_efficiency < 0.7

    def test_nnz_matches_stencil(self):
        wl = MiniFE(nx=10, cg_iters=1)
        assert wl.nnz == 27 * 1000

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MiniFE(nx=2)
        with pytest.raises(ValueError):
            MiniFE(cg_iters=0)


class TestSchedBench:
    def test_label_format(self):
        assert SchedBench(schedule="static", chunk=1).label == "st:1"
        assert SchedBench(schedule="dynamic", chunk=64).label == "dy:64"
        assert SchedBench(schedule="guided", chunk=8).label == "gd:8"

    def test_regions_carry_schedule(self, intel):
        wl = SchedBench(schedule="dynamic", chunk=4, repeats=2)
        regions = list(wl.regions(intel, 8))
        assert len(regions) == 2
        assert all(r.schedule == "dynamic" for r in regions)
        assert all(r.chunk_work > 0 for r in regions)

    def test_zero_chunk_uses_runtime_default(self, intel):
        wl = SchedBench(schedule="static", chunk=0, repeats=1)
        r = next(iter(wl.regions(intel, 8)))
        assert r.chunk_work == 0.0

    def test_work_scales_with_platform_speed(self, intel):
        a64 = get_platform("a64fx")
        fast = SchedBench().total_work(intel)
        slow = SchedBench().total_work(a64)
        assert slow > fast  # slower cores -> more CPU-seconds

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SchedBench(schedule="rr")
        with pytest.raises(ValueError):
            SchedBench(chunk=-1)
        with pytest.raises(ValueError):
            SchedBench(iter_cost_us=0)
