"""Unit tests for the average-noise profile (stage 2's statistics)."""

import pytest

from repro.core.events import EventType
from repro.core.profile import ProfileAccumulator, build_profile
from repro.core.trace import Trace


def trace_with(source, count, duration, exec_time=1.0, etype=EventType.THREAD, cpu=0):
    records = [
        (cpu, int(etype), source, i * exec_time / max(count, 1), duration)
        for i in range(count)
    ]
    return Trace.from_records(records, exec_time)


class TestAccumulation:
    def test_single_source_rate(self):
        profile = build_profile([trace_with("kworker", 10, 1e-4)])
        stats = profile["kworker"]
        assert stats.rate_hz == pytest.approx(10.0)
        assert stats.mean_duration == pytest.approx(1e-4)
        assert stats.total_events == 10

    def test_rate_normalised_by_window(self):
        profile = build_profile([trace_with("k", 10, 1e-4, exec_time=2.0)])
        assert profile["k"].rate_hz == pytest.approx(5.0)

    def test_averages_across_runs(self):
        profile = build_profile(
            [trace_with("k", 10, 1e-4), trace_with("k", 20, 3e-4)]
        )
        stats = profile["k"]
        assert stats.rate_hz == pytest.approx(15.0)
        assert stats.mean_duration == pytest.approx((10 * 1e-4 + 20 * 3e-4) / 30)

    def test_multiple_sources_kept_separate(self):
        t = Trace.from_records(
            [
                (0, int(EventType.IRQ), "timer", 0.1, 1e-6),
                (0, int(EventType.THREAD), "kworker", 0.2, 1e-4),
            ],
            1.0,
        )
        profile = build_profile([t])
        assert set(profile) == {"timer", "kworker"}
        assert profile["timer"].etype is EventType.IRQ
        assert profile["kworker"].etype is EventType.THREAD

    def test_empty_traces_counted_in_window(self):
        profile = build_profile(
            [trace_with("k", 10, 1e-4), trace_with("other", 0, 1e-4)]
        )
        # second run's window halves k's rate
        assert profile["k"].rate_hz == pytest.approx(5.0)

    def test_accumulator_requires_runs(self):
        with pytest.raises(ValueError):
            ProfileAccumulator().build()

    def test_mapping_protocol(self):
        profile = build_profile([trace_with("k", 3, 1e-5)])
        assert len(profile) == 1
        assert "k" in profile
        assert profile.get("missing") is None


class TestExpectedCount:
    def test_scales_with_window(self):
        profile = build_profile([trace_with("k", 10, 1e-4)])
        assert profile["k"].expected_count(1.0) == 10
        assert profile["k"].expected_count(0.5) == 5

    def test_rounding(self):
        profile = build_profile([trace_with("k", 3, 1e-4, exec_time=2.0)])
        # 1.5 Hz * 1.0s -> 2 (round half to even)
        assert profile["k"].expected_count(1.0) == 2

    def test_negative_window_rejected(self):
        profile = build_profile([trace_with("k", 1, 1e-4)])
        with pytest.raises(ValueError):
            profile["k"].expected_count(-1.0)


class TestAggregate:
    def test_total_noise_rate(self):
        t = Trace.from_records(
            [
                (0, 0, "a", 0.1, 1e-6),
                (0, 2, "b", 0.2, 1e-6),
                (0, 2, "b", 0.3, 1e-6),
            ],
            1.0,
        )
        profile = build_profile([t])
        assert profile.total_noise_rate() == pytest.approx(3.0)
