"""CLI tests (argument wiring and command execution)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def small_reps(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BASELINE_REPS", "3")
    monkeypatch.setenv("REPRO_INJECT_REPS", "2")
    monkeypatch.setenv("REPRO_COLLECT_REPS", "4")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_spec_defaults(self):
        args = build_parser().parse_args(["baseline"])
        assert args.platform == "intel-9700kf"
        assert args.model == "omp"


class TestCommands:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "intel-9700kf" in out and "a64fx-reserved" in out

    def test_baseline(self, capsys):
        assert main(["baseline", "--reps", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "mean=" in out

    def test_trace_writes_worst_case(self, tmp_path, capsys):
        out_file = tmp_path / "worst.json"
        assert main(["trace", "--reps", "3", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert "exec_time" in data and "sources" in data

    def test_configure_writes_config(self, tmp_path, capsys):
        out_file = tmp_path / "cfg.json"
        assert main(["configure", "--reps", "3", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert "threads" in data

    def test_inject_roundtrip(self, tmp_path, capsys):
        cfg = tmp_path / "cfg.json"
        main(["configure", "--reps", "3", "--seed", "42", "--out", str(cfg)])
        assert main(["inject", "--reps", "2", "--config", str(cfg)]) == 0
        out = capsys.readouterr().out
        assert "degradation" in out

    def test_pipeline(self, capsys):
        assert main(["pipeline", "--reps", "2", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "replication accuracy" in out

    def test_noise_lists_registered_sources(self, capsys):
        assert main(["noise"]) == 0
        out = capsys.readouterr().out
        for kind in ("trace-replay", "io", "memory", "hpas.membw", "background"):
            assert kind in out
        assert "irq_cpus" in out  # per-source parameter docs

    def test_inject_composes_heterogeneous_noise(self, tmp_path, capsys):
        """One invocation replays the worst case while composing I/O and
        memory interference on top — the unified-stack acceptance path."""
        cfg = tmp_path / "cfg.json"
        main(["configure", "--reps", "3", "--seed", "42", "--out", str(cfg)])
        assert (
            main(
                [
                    "inject",
                    "--reps", "2",
                    "--config", str(cfg),
                    "--noise", "io:start=0.01,duration=0.1,irq_cpus=0+1",
                    "--noise", "memory:start=0.0,duration=0.2,bandwidth_gbs=15",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trace-replay + io + memory" in out
        assert "degradation" in out

    def test_inject_noise_only_needs_no_config(self, capsys):
        assert (
            main(
                [
                    "inject",
                    "--reps", "2",
                    "--noise", "hpas.membw:start=0.0,duration=0.1,bandwidth_gbs=10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hpas.membw" in out

    def test_inject_without_any_noise_rejected(self):
        with pytest.raises(SystemExit, match="--config and/or"):
            main(["inject", "--reps", "2"])

    def test_inject_bad_noise_spec_rejected(self):
        with pytest.raises(SystemExit, match="warp-drive"):
            main(["inject", "--reps", "2", "--noise", "warp-drive:x=1"])

    def test_pipeline_with_extra_noise(self, capsys):
        assert (
            main(
                [
                    "pipeline",
                    "--reps", "2",
                    "--seed", "42",
                    "--noise", "io:start=0.01,duration=0.05",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "replication accuracy" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "paper" in out

    def test_figure3_demo(self, capsys):
        assert main(["figure", "3", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "local_timer" in out or "Event Type" in out

    def test_figure4_demo(self, capsys):
        assert main(["figure", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "refined" in out

    def test_figure5_demo(self, capsys):
        assert main(["figure", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "noise_events" in out

    def test_figure6_demo(self, capsys):
        assert main(["figure", "6", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "injector processes" in out

    def test_analyze(self, tmp_path, capsys):
        trace_file = tmp_path / "t.json"
        main(["trace", "--reps", "3", "--seed", "4", "--out", str(trace_file)])
        capsys.readouterr()
        assert main(["analyze", str(trace_file), "--top", "3", "--bins", "5"]) == 0
        out = capsys.readouterr().out
        assert "top 3 sources" in out
        assert "noise timeline" in out
        assert "busiest" in out

    def test_anomaly_prob_flag(self, capsys):
        assert main(["baseline", "--reps", "3", "--anomaly-prob", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "anomalies observed: 3/3" in out
