"""Tests for real osnoise-ftrace ingestion."""

import io

import pytest

from repro.core.events import EventType
from repro.core.osnoise_import import load_osnoise_ftrace, parse_osnoise_ftrace
from repro.core.profile import build_profile

SAMPLE = """\
# tracer: osnoise
#
#           TASK-PID     CPU#  |||||  TIMESTAMP  FUNCTION
#              | |         |   |||||     |         |
          <idle>-0       [005] d.h..  255.045740: irq_noise: local_timer:236 start 255.045740274 duration 310 ns
          <idle>-0       [010] d.s..  255.045742: softirq_noise: RCU:9 start 255.045742404 duration 140 ns
          <idle>-0       [025] d.s..  255.045742: softirq_noise: SCHED:7 start 255.045742554 duration 690 ns
          <idle>-0       [024] d.h..  256.100739: irq_noise: local_timer:236 start 256.100739459 duration 170 ns
    kworker/13:1-187     [013] .....  256.188747: thread_noise: kworker/13:1:187 start 256.188747948 duration 3760 ns
  kworker/u129:5-1337    [001] .....  256.188750: thread_noise: kworker/u129:5:1337 start 256.188750718 duration 5830 ns
          <idle>-0       [002] d.h..  256.200000: nmi_noise: perf:1 start 256.200000100 duration 2000 ns
           some junk line that should be ignored
"""


class TestParsing:
    def test_event_count_and_sources(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE))
        assert trace.n_events == 7
        assert "local_timer:236" in trace.sources
        # thread pid suffix folded away
        assert "kworker/13:1" in trace.sources
        assert "kworker/13:1:187" not in trace.sources

    def test_event_classes(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE))
        kinds = {
            trace.sources[sid]: EventType(int(et))
            for sid, et in zip(trace.source_ids, trace.etypes)
        }
        assert kinds["RCU:9"] is EventType.SOFTIRQ
        assert kinds["kworker/13:1"] is EventType.THREAD
        assert kinds["perf:1"] is EventType.IRQ  # NMIs join the IRQ class

    def test_rebased_to_zero(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE))
        assert trace.starts[0] == pytest.approx(0.0)
        # relative spacing preserved
        assert trace.starts[-1] == pytest.approx(256.200000100 - 255.045740274)

    def test_durations_in_seconds(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE))
        mask = trace.events_of_source("kworker/u129:5")
        assert trace.durations[mask][0] == pytest.approx(5830e-9)

    def test_exec_time_defaults_to_span(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE))
        assert trace.exec_time == pytest.approx(trace.starts[-1] + trace.durations[-1])

    def test_explicit_exec_time(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE), exec_time=2.5)
        assert trace.exec_time == 2.5

    def test_no_rebase(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE), rebase=False)
        assert trace.starts[0] == pytest.approx(255.045740274)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            parse_osnoise_ftrace(io.StringIO("# header only\n"))

    def test_load_from_path(self, tmp_path):
        p = tmp_path / "trace.txt"
        p.write_text(SAMPLE)
        assert load_osnoise_ftrace(str(p)).n_events == 7

    def test_load_from_file_object(self):
        assert load_osnoise_ftrace(io.StringIO(SAMPLE)).n_events == 7

    def test_meta_marks_origin(self):
        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE))
        assert trace.meta["origin"] == "osnoise-ftrace"


class TestPipelineCompatibility:
    def test_real_trace_feeds_profile_and_config(self):
        """A parsed ftrace trace flows through the paper's stage 2."""
        from repro.core.config import generate_config

        trace = parse_osnoise_ftrace(io.StringIO(SAMPLE), exec_time=1.5)
        profile = build_profile([trace])
        config = generate_config(trace, profile, min_duration=1e-9)
        # everything refined away (worst case == only observation == average)
        # or a valid config — either way, no crash and valid JSON
        assert config.to_json()
