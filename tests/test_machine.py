"""Unit tests for the Machine facade."""

import numpy as np
import pytest

from repro.sim.machine import Machine
from repro.sim.platform import get_platform

from conftest import make_machine


class TestLifecycle:
    def test_run_returns_exec_time(self, quiet_platform):
        m = make_machine(quiet_platform)
        result = m.run(
            lambda mm: mm.engine.schedule(0.25, mm.workload_done), expected_duration=0.25
        )
        assert result.exec_time == pytest.approx(0.25)

    def test_single_use(self, quiet_platform):
        m = make_machine(quiet_platform)
        m.run(lambda mm: mm.engine.schedule(0.1, mm.workload_done), expected_duration=0.1)
        with pytest.raises(RuntimeError):
            m.run(lambda mm: mm.engine.schedule(0.1, mm.workload_done), expected_duration=0.1)

    def test_deadlock_detected(self, quiet_platform):
        m = make_machine(quiet_platform)
        with pytest.raises(RuntimeError, match="deadlock"):
            m.run(lambda mm: None, expected_duration=1.0)

    def test_workload_done_idempotent(self, quiet_platform):
        m = make_machine(quiet_platform)

        def start(mm):
            mm.engine.schedule(0.1, mm.workload_done)
            mm.engine.schedule(0.1, mm.workload_done)

        result = m.run(start, expected_duration=0.1)
        assert result.exec_time == pytest.approx(0.1)

    def test_trace_none_when_tracing_off(self, quiet_platform):
        m = make_machine(quiet_platform, tracing=False)
        result = m.run(
            lambda mm: mm.engine.schedule(0.1, mm.workload_done), expected_duration=0.1
        )
        assert result.trace is None

    def test_trace_present_when_tracing_on(self, quiet_platform):
        m = make_machine(quiet_platform, tracing=True)
        result = m.run(
            lambda mm: mm.engine.schedule(0.1, mm.workload_done), expected_duration=0.1
        )
        assert result.trace is not None

    def test_meta_passed_through(self, quiet_platform):
        m = make_machine(quiet_platform)
        result = m.run(
            lambda mm: mm.engine.schedule(0.1, mm.workload_done),
            expected_duration=0.1,
            meta={"run": 7},
        )
        assert result.meta == {"run": 7}

    def test_anomaly_reported(self):
        from dataclasses import replace

        plat = get_platform("intel-9700kf")
        env = replace(plat.noise, anomalies=replace(plat.noise.anomalies, prob=1.0))
        m = make_machine(plat.with_noise(env), seed=5)
        result = m.run(
            lambda mm: mm.engine.schedule(0.5, mm.workload_done), expected_duration=0.5
        )
        assert result.anomaly is not None

    def test_noise_disabled_machine(self, quiet_platform):
        rng = np.random.default_rng(0)
        m = Machine(quiet_platform, rng, enable_noise=False, tracing=False)
        assert m.noise_model is None
        assert m.extra_steal(0) == 0.0
        result = m.run(
            lambda mm: mm.engine.schedule(0.1, mm.workload_done), expected_duration=0.1
        )
        assert result.anomaly is None

    def test_workload_cpu_accounting(self, quiet_platform):
        m = make_machine(quiet_platform)
        m.note_workload_cpu(3)
        m.note_workload_cpu(3)
        m.note_workload_cpu(5)
        assert m.workload_cpus == {3, 5}
