"""Unit tests for the task and work-pool models."""

import pytest

from repro.sim.task import SchedPolicy, Task, TaskKind, WorkPool


class TestConstruction:
    def test_defaults(self):
        t = Task("t", work=1.0)
        assert t.policy is SchedPolicy.OTHER
        assert not t.spin
        assert t.alive

    def test_spin_when_no_work(self):
        assert Task("t").spin

    def test_pool_member_not_spinning(self):
        pool = WorkPool("p", 1.0)
        t = Task("t", pool=pool)
        assert not t.spin

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Task("t", work=-1.0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            Task("t", weight=0.0)

    def test_fifo_requires_priority(self):
        with pytest.raises(ValueError):
            Task("t", policy=SchedPolicy.FIFO, work=1.0)
        Task("t", policy=SchedPolicy.FIFO, rt_priority=50, work=1.0)

    def test_unique_tids(self):
        assert Task("a").tid != Task("b").tid

    def test_is_noise(self):
        assert not Task("w").is_noise()
        assert Task("n", kind=TaskKind.THREAD_NOISE).is_noise()


class TestAdvance:
    def test_consumes_work_at_rate(self):
        t = Task("t", work=1.0)
        t.rate = 0.5
        t.advance(1.0)
        assert t.work_remaining == pytest.approx(0.5)

    def test_zero_rate_consumes_nothing(self):
        t = Task("t", work=1.0)
        t.rate = 0.0
        t.advance(10.0)
        assert t.work_remaining == 1.0

    def test_idempotent_at_same_time(self):
        t = Task("t", work=1.0)
        t.rate = 1.0
        t.advance(0.5)
        t.advance(0.5)
        assert t.work_remaining == pytest.approx(0.5)

    def test_clamps_at_zero(self):
        t = Task("t", work=0.1)
        t.rate = 1.0
        t.advance(5.0)
        assert t.work_remaining == 0.0

    def test_backwards_time_ignored(self):
        t = Task("t", work=1.0)
        t.rate = 1.0
        t.advance(0.5)
        t.advance(0.4)
        assert t.work_remaining == pytest.approx(0.5)

    def test_accumulates_cpu_time(self):
        t = Task("t", work=2.0)
        t.rate = 0.5
        t.advance(2.0)
        assert t.total_cpu_time == pytest.approx(1.0)

    def test_pool_member_feeds_pool(self):
        pool = WorkPool("p", 2.0)
        t = Task("t")
        t.join_pool(pool)
        t.rate = 1.0
        t.advance(0.5)
        assert pool.work_remaining == pytest.approx(1.5)
        assert t.work_remaining is None


class TestTimeToCompletion:
    def test_simple(self):
        t = Task("t", work=2.0)
        t.rate = 0.5
        assert t.time_to_completion() == pytest.approx(4.0)

    def test_none_for_spin(self):
        t = Task("t")
        t.rate = 1.0
        assert t.time_to_completion() is None

    def test_none_for_zero_rate(self):
        t = Task("t", work=1.0)
        assert t.time_to_completion() is None

    def test_none_for_pool_member(self):
        pool = WorkPool("p", 1.0)
        t = Task("t")
        t.join_pool(pool)
        t.rate = 1.0
        assert t.time_to_completion() is None


class TestStateTransitions:
    def test_assign_work_clears_spin(self):
        t = Task("t")
        t.assign_work(1.0, mem_demand=5.0)
        assert not t.spin
        assert t.work_remaining == 1.0
        assert t.mem_demand == 5.0

    def test_to_spin_resets(self):
        t = Task("t")
        t.assign_work(1.0, mem_demand=5.0)
        t.to_spin()
        assert t.spin
        assert t.work_remaining is None
        assert t.mem_demand == 0.0

    def test_join_pool_registers_membership(self):
        pool = WorkPool("p", 1.0)
        t = Task("t")
        t.join_pool(pool)
        assert t in pool.members

    def test_assign_rejects_negative(self):
        with pytest.raises(ValueError):
            Task("t").assign_work(-1.0)


class TestWorkPool:
    def test_total_rate_sums_members(self):
        pool = WorkPool("p", 1.0)
        for rate in (0.5, 0.25):
            t = Task("t")
            t.join_pool(pool)
            t.rate = rate
        assert pool.total_rate() == pytest.approx(0.75)

    def test_time_to_drain(self):
        pool = WorkPool("p", 3.0)
        t = Task("t")
        t.join_pool(pool)
        t.rate = 1.5
        assert pool.time_to_drain() == pytest.approx(2.0)

    def test_time_to_drain_none_when_stalled(self):
        pool = WorkPool("p", 3.0)
        assert pool.time_to_drain() is None

    def test_consume_clamps(self):
        pool = WorkPool("p", 1.0)
        pool.consume(5.0)
        assert pool.work_remaining == 0.0

    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            WorkPool("p", -1.0)
