"""Unit tests for the OpenMP-like and SYCL-like runtimes."""

import pytest

from repro.runtimes import get_runtime
from repro.runtimes.base import Placement, Region, split_static
from repro.runtimes.openmp import OpenMPRuntime
from repro.runtimes.sycl import SYCLRuntime
from repro.sim.task import SchedPolicy, Task, TaskKind

from conftest import make_machine


def run_regions(regions, model="omp", n_threads=4, pinned=True, machine=None, noise_at=None, noise_dur=0.2, noise_cpu=0):
    """Execute a region list on a quiet 8-CPU machine; returns exec time."""
    m = machine if machine is not None else make_machine()
    rt = get_runtime(model)
    placement = Placement(cpus=tuple(range(n_threads)), n_threads=n_threads, pinned=pinned)

    def start(mm):
        rt.launch(mm, iter(regions), placement)
        if noise_at is not None:
            def fire():
                noise = Task(
                    "noise",
                    policy=SchedPolicy.FIFO,
                    rt_priority=90,
                    kind=TaskKind.IRQ_NOISE,
                    work=noise_dur,
                    affinity=frozenset({noise_cpu}),
                )
                mm.scheduler.submit(noise, cpu=noise_cpu)
            mm.engine.schedule(noise_at, fire)

    result = m.run(start, expected_duration=10.0)
    return result.exec_time


class TestRegionValidation:
    def test_rejects_negative_work(self):
        with pytest.raises(ValueError):
            Region("r", total_work=-1.0)

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ValueError):
            Region("r", total_work=1.0, schedule="weird")

    def test_rejects_bad_imbalance(self):
        with pytest.raises(ValueError):
            Region("r", total_work=1.0, imbalance=1.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            Region("r", total_work=1.0, sycl_efficiency=0.0)


class TestPlacement:
    def test_thread_count_bounded_by_cpus(self):
        with pytest.raises(ValueError):
            Placement(cpus=(0, 1), n_threads=3, pinned=False)

    def test_duplicate_cpus_rejected(self):
        with pytest.raises(ValueError):
            Placement(cpus=(0, 0), n_threads=1, pinned=False)


class TestSplitStatic:
    def test_balanced(self):
        shares = split_static(1.0, 4, 0.0)
        assert shares == [0.25] * 4

    def test_sums_to_total(self):
        shares = split_static(2.0, 5, 0.3)
        assert sum(shares) == pytest.approx(2.0)

    def test_spread_matches_imbalance(self):
        shares = split_static(1.0, 4, 0.2)
        base = 0.25
        assert max(shares) == pytest.approx(base * 1.2)
        assert min(shares) == pytest.approx(base * 0.8)

    def test_single_thread(self):
        assert split_static(1.0, 1, 0.5) == [1.0]


class TestOpenMP:
    def test_static_region_elapsed(self):
        t = run_regions([Region("r", total_work=4.0)], n_threads=4)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_serial_region_runs_on_master(self):
        t = run_regions([Region("r", total_work=0.5, serial=True)], n_threads=4)
        assert t == pytest.approx(0.5, rel=0.01)

    def test_regions_sequential(self):
        regions = [Region(f"r{i}", total_work=1.0) for i in range(3)]
        t = run_regions(regions, n_threads=4)
        assert t == pytest.approx(0.75, rel=0.01)

    def test_imbalance_extends_region(self):
        balanced = run_regions([Region("r", total_work=4.0, imbalance=0.0)], n_threads=4)
        skewed = run_regions([Region("r", total_work=4.0, imbalance=0.2)], n_threads=4)
        assert skewed > balanced * 1.15

    def test_static_chunking_flattens_imbalance(self):
        plain = run_regions(
            [Region("r", total_work=4.0, imbalance=0.3)], n_threads=4
        )
        chunked = run_regions(
            [Region("r", total_work=4.0, imbalance=0.3, chunk_work=0.01)], n_threads=4
        )
        assert chunked < plain

    def test_dynamic_absorbs_imbalance(self):
        static = run_regions(
            [Region("r", total_work=4.0, imbalance=0.3)], n_threads=4
        )
        dynamic = run_regions(
            [Region("r", total_work=4.0, imbalance=0.3, schedule="dynamic", chunk_work=0.01)],
            n_threads=4,
        )
        assert dynamic < static

    def test_guided_close_to_dynamic(self):
        dyn = run_regions(
            [Region("r", total_work=4.0, schedule="dynamic", chunk_work=0.01)], n_threads=4
        )
        guided = run_regions(
            [Region("r", total_work=4.0, schedule="guided", chunk_work=0.01)], n_threads=4
        )
        assert guided == pytest.approx(dyn, rel=0.05)

    def test_reduction_adds_serial_combine(self):
        plain = run_regions([Region("r", total_work=4.0)], n_threads=4)
        red = run_regions([Region("r", total_work=4.0, reduction=True)], n_threads=4)
        assert red > plain

    def test_noise_on_static_straggler_blocks_region(self):
        # Pinned static region hit by 0.2s FIFO noise mid-flight: the
        # whole region waits (the paper's OpenMP sensitivity).
        quiet = run_regions([Region("r", total_work=4.0)], n_threads=4)
        noisy = run_regions(
            [Region("r", total_work=4.0)], n_threads=4, noise_at=0.5
        )
        assert noisy == pytest.approx(quiet + 0.2, rel=0.02)

    def test_empty_stream_finishes(self):
        t = run_regions([], n_threads=2)
        assert t < 1e-3

    def test_runtime_single_use(self):
        rt = OpenMPRuntime()
        m = make_machine()
        placement = Placement(cpus=(0,), n_threads=1, pinned=True)
        m.run(lambda mm: rt.launch(mm, iter([]), placement), expected_duration=0.1)
        with pytest.raises(RuntimeError):
            rt.launch(m, iter([]), placement)

    def test_default_chunk_fraction_validated(self):
        with pytest.raises(ValueError):
            OpenMPRuntime(default_chunk_fraction=0.0)


class TestSYCL:
    def test_kernel_elapsed_includes_efficiency(self):
        omp = run_regions([Region("r", total_work=4.0, sycl_efficiency=0.5)], model="omp", n_threads=4)
        sycl = run_regions([Region("r", total_work=4.0, sycl_efficiency=0.5)], model="sycl", n_threads=4)
        assert sycl == pytest.approx(omp * 2.0, rel=0.05)

    def test_submission_cost_paid_per_kernel(self):
        few = run_regions(
            [Region("r", total_work=0.4, sycl_efficiency=1.0)], model="sycl", n_threads=4
        )
        many = run_regions(
            [Region(f"r{i}", total_work=0.004, sycl_efficiency=1.0) for i in range(100)],
            model="sycl",
            n_threads=4,
        )
        # same total work, 100x the submissions
        assert many > few + 90 * SYCLRuntime().submit_cost

    def test_stealing_absorbs_noise_better_than_static(self):
        quiet_omp = run_regions([Region("r", total_work=8.0)], model="omp", n_threads=4)
        noisy_omp = run_regions([Region("r", total_work=8.0)], model="omp", n_threads=4, noise_at=0.5)
        quiet_sycl = run_regions(
            [Region("r", total_work=8.0, sycl_efficiency=1.0)], model="sycl", n_threads=4
        )
        noisy_sycl = run_regions(
            [Region("r", total_work=8.0, sycl_efficiency=1.0)], model="sycl", n_threads=4, noise_at=0.5
        )
        omp_hit = noisy_omp - quiet_omp
        sycl_hit = noisy_sycl - quiet_sycl
        assert sycl_hit < omp_hit * 0.6

    def test_serial_region_on_host(self):
        t = run_regions(
            [Region("r", total_work=0.5, serial=True, sycl_efficiency=1.0)],
            model="sycl",
            n_threads=4,
        )
        assert t == pytest.approx(0.5, rel=0.01)

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            SYCLRuntime(submit_cost=-1.0)
        with pytest.raises(ValueError):
            SYCLRuntime(oversubscription=0)


class TestRuntimeJitter:
    def test_sycl_jitter_exceeds_omp(self):
        assert SYCLRuntime.runtime_jitter_sd > OpenMPRuntime.runtime_jitter_sd

    def test_jitter_varies_run_to_run(self):
        times = []
        for seed in range(4):
            m = make_machine(seed=seed)
            rt = get_runtime("sycl")
            placement = Placement(cpus=(0, 1), n_threads=2, pinned=True)
            regions = [Region("r", total_work=1.0, sycl_efficiency=1.0)]
            rt.launch(m, iter(regions), placement)
            m.engine.run()
            times.append(m.engine.now)
        assert len(set(times)) == 4

    def test_jitter_deterministic_per_seed(self):
        times = []
        for _ in range(2):
            m = make_machine(seed=9)
            rt = get_runtime("sycl")
            placement = Placement(cpus=(0, 1), n_threads=2, pinned=True)
            regions = [Region("r", total_work=1.0, sycl_efficiency=1.0)]
            rt.launch(m, iter(regions), placement)
            m.engine.run()
            times.append(m.engine.now)
        assert times[0] == times[1]


class TestModelLookup:
    def test_known_models(self):
        assert isinstance(get_runtime("omp"), OpenMPRuntime)
        assert isinstance(get_runtime("openmp"), OpenMPRuntime)
        assert isinstance(get_runtime("sycl"), SYCLRuntime)
        assert isinstance(get_runtime("dpcpp"), SYCLRuntime)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_runtime("cuda")
