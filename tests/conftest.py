"""Shared fixtures: quiet machines, small platforms, seeded RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.cpu import Topology
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.noise import NoiseEnvironment
from repro.sim.platform import PlatformSpec, get_platform
from repro.sim.scheduler import Scheduler


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def topo4() -> Topology:
    return Topology(n_physical=4, smt=1)


@pytest.fixture
def topo_smt() -> Topology:
    return Topology(n_physical=4, smt=2)


@pytest.fixture
def sched(engine, topo4) -> Scheduler:
    return Scheduler(engine, topo4)


@pytest.fixture
def sched_nothrottle(engine, topo4) -> Scheduler:
    return Scheduler(engine, topo4, rt_throttle=False)


def silent_env() -> NoiseEnvironment:
    """A noise environment that produces nothing (deterministic tests)."""
    from repro.sim.noise import AnomalySpec, MicroNoiseSpec

    return NoiseEnvironment(
        micro=MicroNoiseSpec(
            tick_mean=1e-12,
            softirq_prob=0.0,
            run_factor_sd=0.0,
            cpu_factor_sd=0.0,
            speed_wander_mean=0.0,
            speed_wander_sd=0.0,
        ),
        sources=(),
        anomalies=AnomalySpec(prob=0.0),
    )


@pytest.fixture
def quiet_platform() -> PlatformSpec:
    """Intel preset with all noise silenced."""
    return get_platform("intel-9700kf").with_noise(silent_env())


def make_machine(platform=None, seed=0, **kwargs) -> Machine:
    """Machine factory with sensible test defaults."""
    if platform is None:
        platform = get_platform("intel-9700kf").with_noise(silent_env())
    rng = np.random.default_rng(seed)
    kwargs.setdefault("tracing", False)
    return Machine(platform, rng, **kwargs)


@pytest.fixture
def quiet_machine(quiet_platform) -> Machine:
    return make_machine(quiet_platform)
