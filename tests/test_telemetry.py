"""Telemetry layer tests: spans, counters, exporters, and bit-identity.

The contract under test has two halves.  Observability: spans nest and
keep parent linkage across threads *and* process-pool workers, counters
merge back from worker buffers, and every exporter produces its
documented format.  Non-interference: with telemetry disabled nothing
is allocated or recorded, and with telemetry enabled simulation results
stay bit-identical — enforced here against the golden fixtures and a
chaos-disturbed run.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.harness.cache import ResultCache
from repro.harness.executor import ParallelExecutor, SerialExecutor
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.faults import CampaignJournal, FailureRecord, FaultPolicy
from tests.golden_cases import FIXTURE_PATH, build_cases, run_case

_FIXTURES = Path(__file__).resolve().parent.parent / FIXTURE_PATH


def spec(**kw):
    defaults = dict(
        platform="intel-9700kf", workload="schedbench", reps=4, seed=42,
        workload_params={"repeats": 2},
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


@pytest.fixture(autouse=True)
def _isolated_telemetry(monkeypatch):
    """Every test starts disabled with empty buffers and leaves no trace."""
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    telemetry.configure(enabled=False)
    telemetry.reset()
    yield
    telemetry.configure(enabled=False)
    telemetry.reset()


# ----------------------------------------------------------------------
# enablement and the disabled-mode no-op contract
# ----------------------------------------------------------------------
class TestEnablement:
    def test_disabled_by_default_and_null_span_is_shared(self):
        assert not telemetry.enabled()
        s1 = telemetry.span("anything", key="value")
        s2 = telemetry.span("else")
        assert s1 is s2  # one singleton: no per-call allocation

    def test_disabled_mode_records_nothing(self):
        with telemetry.span("rep", rep=1):
            with telemetry.span("inner"):
                pass
        group = telemetry.new_group("test")
        group.inc("counted")
        assert telemetry.events_snapshot() == []
        # counters stay live regardless (they back stats() views)
        assert group.get("counted") == 1

    def test_env_directive_semantics(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert telemetry.refresh_from_env() is False
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry.refresh_from_env() is True
        assert telemetry.telemetry_dir() is None
        monkeypatch.setenv("REPRO_TELEMETRY", "/tmp/somewhere")
        assert telemetry.refresh_from_env() is True
        assert telemetry.telemetry_dir() == Path("/tmp/somewhere")
        monkeypatch.delenv("REPRO_TELEMETRY")
        assert telemetry.refresh_from_env() is False

    def test_disabled_experiment_emits_no_events(self):
        run_experiment(spec(), executor=SerialExecutor())
        assert telemetry.events_snapshot() == []


# ----------------------------------------------------------------------
# span recording and parentage
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_linkage(self):
        telemetry.configure(enabled=True)
        with telemetry.span("outer") as outer:
            with telemetry.span("middle") as middle:
                with telemetry.span("inner", tag="x"):
                    pass
        events = {e["name"]: e for e in telemetry.events_snapshot()}
        assert set(events) == {"outer", "middle", "inner"}
        assert events["outer"]["parent"] is None
        assert events["middle"]["parent"] == outer.id
        assert events["inner"]["parent"] == middle.id
        assert events["inner"]["args"] == {"tag": "x"}
        for e in events.values():
            assert e["dur"] >= 0.0 and isinstance(e["pid"], int)

    def test_exception_tags_span_as_error(self):
        telemetry.configure(enabled=True)
        with pytest.raises(ValueError):
            with telemetry.span("failing"):
                raise ValueError("boom")
        (event,) = telemetry.events_snapshot()
        assert event["error"] == "ValueError"

    def test_base_parent_bridges_stackless_threads(self):
        telemetry.configure(enabled=True)
        telemetry.set_base_parent("12345-1")
        assert telemetry.current_span_id() == "12345-1"
        with telemetry.span("child") as child:
            assert child.parent == "12345-1"
        telemetry.set_base_parent(None)
        assert telemetry.current_span_id() is None

    def test_span_ids_embed_pid(self):
        import os

        telemetry.configure(enabled=True)
        with telemetry.span("x") as s:
            assert s.id.startswith(f"{os.getpid()}-")


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
class TestCounters:
    def test_groups_aggregate_by_namespace(self):
        a = telemetry.new_group("demo")
        b = telemetry.new_group("demo")
        a.inc("n", 2)
        b.inc("n", 3)
        b.set("gauge", 7)
        snap = telemetry.counters_snapshot()
        assert snap["demo"]["n"] == 5
        assert snap["demo"]["gauge"] == 7

    def test_shared_group_is_singleton(self):
        assert telemetry.get_group("engine") is telemetry.get_group("engine")

    def test_worker_capture_diffs_preexisting_counts(self):
        # Simulates a forked worker: counters inherited non-zero must
        # not be re-flushed to the parent.
        group = telemetry.get_group("capture-test")
        group.inc("inherited", 10)
        token = telemetry.worker_capture_begin("parent-id")
        group.inc("fresh", 2)
        group.inc("inherited")  # 10 -> 11: only the delta of 1 ships
        blob = telemetry.worker_capture_end(token)
        assert blob["counters"]["capture-test"] == {"fresh": 2, "inherited": 1}
        assert blob["events"] == []

    def test_absorb_worker_merges_into_shared_groups(self):
        telemetry.absorb_worker(
            {"events": [{"type": "span", "name": "w"}], "counters": {"eng": {"runs": 3}}}
        )
        assert telemetry.get_group("eng").get("runs") == 3
        assert telemetry.events_snapshot() == [{"type": "span", "name": "w"}]
        telemetry.absorb_worker(None)  # tolerated: failed chunks ship nothing


# ----------------------------------------------------------------------
# stats() regression: the old shapes are now thin registry views
# ----------------------------------------------------------------------
class TestStatsShapes:
    def test_serial_executor_stats_shape(self):
        ex = SerialExecutor()
        assert ex.stats() == {"rep_retries": 0, "rep_failures": 0}

    def test_parallel_executor_stats_shape(self):
        ex = ParallelExecutor(jobs=2)
        assert ex.stats() == {
            "pool_rebuilds": 0,
            "chunk_timeouts": 0,
            "chunk_redispatches": 0,
            "rep_retries": 0,
            "rep_failures": 0,
            "shm_chunks": 0,
            "shm_trace_chunks": 0,
            "pickle_chunks": 0,
            "degraded": False,
        }

    def test_cache_stats_shape_and_attributes(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = ResultCache(root=tmp_path / "c")
        assert cache.stats() == {
            "hits": 0, "misses": 0, "corrupt": 0, "stale": 0, "partial": 0,
            "integrity_quarantined": 0,
        }
        rs1 = cache.get_or_run(spec(), executor=SerialExecutor())
        rs2 = cache.get_or_run(spec(), executor=SerialExecutor())
        assert np.array_equal(rs1.times, rs2.times)
        assert cache.stats() == {
            "hits": 1, "misses": 1, "corrupt": 0, "stale": 0, "partial": 0,
            "integrity_quarantined": 0,
        }
        # the historical attribute views stay readable
        assert cache.hits == 1 and cache.misses == 1 and cache.corrupt == 0

    def test_executor_counters_surface_in_global_snapshot(self):
        failures = {"count": 0}

        class Flaky(Exception):
            pass

        ex = SerialExecutor()
        policy = FaultPolicy(on_failure="retry", max_retries=2, backoff_base=0.0)

        import repro.harness.chunkrunner as executor_mod

        original = executor_mod._execute_rep

        def flaky(context, sp, noise, index):
            if index == 1 and failures["count"] == 0:
                failures["count"] += 1
                raise Flaky("first attempt of rep 1 fails")
            return original(context, sp, noise, index)

        executor_mod._execute_rep = flaky
        try:
            list(ex.run_reps(spec(), None, 3, policy=policy))
        finally:
            executor_mod._execute_rep = original
        assert ex.stats()["rep_retries"] == 1
        assert telemetry.counters_snapshot()["executor"]["rep_retries"] == 1


# ----------------------------------------------------------------------
# cross-worker spans and counter merge
# ----------------------------------------------------------------------
class TestWorkerFlush:
    def test_parallel_run_links_spans_across_processes(self):
        import os

        telemetry.configure(enabled=True)
        ex = ParallelExecutor(jobs=2, chunk_size=2)
        try:
            rs = run_experiment(spec(reps=6), executor=ex)
        finally:
            ex.close()
        events = telemetry.events_snapshot()
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        assert set(by_name) >= {"experiment", "chunk", "rep"}
        (experiment,) = by_name["experiment"]
        chunk_ids = {e["id"] for e in by_name["chunk"]}
        # chunk spans recorded in worker pids parent to the experiment
        worker_chunks = [e for e in by_name["chunk"] if e["pid"] != os.getpid()]
        assert worker_chunks, "expected chunks to run in pool workers"
        for e in by_name["chunk"]:
            assert e["parent"] == experiment["id"]
        for e in by_name["rep"]:
            assert e["parent"] in chunk_ids
        assert len(by_name["rep"]) == 6
        assert len(rs.times) == 6

    def test_parallel_and_serial_results_identical_with_telemetry(self):
        rs_off = run_experiment(spec(), executor=SerialExecutor())
        telemetry.configure(enabled=True)
        rs_serial = run_experiment(spec(), executor=SerialExecutor())
        ex = ParallelExecutor(jobs=2)
        try:
            rs_parallel = run_experiment(spec(), executor=ex)
        finally:
            ex.close()
        assert [t.hex() for t in rs_off.times] == [t.hex() for t in rs_serial.times]
        assert [t.hex() for t in rs_off.times] == [t.hex() for t in rs_parallel.times]

    def test_engine_counters_merge_back_from_workers(self):
        telemetry.configure(enabled=True)
        ex = ParallelExecutor(jobs=2)
        try:
            run_experiment(spec(reps=4), executor=ex)
        finally:
            ex.close()
        engine = telemetry.counters_snapshot()["engine"]
        assert engine["runs"] == 4
        assert engine["events_executed"] > 0


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExporters:
    def _sample_events(self):
        telemetry.configure(enabled=True)
        with telemetry.span("experiment", spec="s"):
            with telemetry.span("rep", rep=0):
                pass
        telemetry.get_group("engine").inc("runs", 2)
        return telemetry.events_snapshot(), telemetry.counters_snapshot()

    def test_jsonl_round_trip(self, tmp_path):
        events, counters = self._sample_events()
        path = telemetry.write_events_jsonl(tmp_path / "events.jsonl", events, counters)
        loaded_events, loaded_counters = telemetry.load_events_jsonl(path)
        assert loaded_events == events
        assert loaded_counters["engine"]["runs"] == 2

    def test_jsonl_reader_tolerates_torn_lines(self, tmp_path):
        events, counters = self._sample_events()
        path = telemetry.write_events_jsonl(tmp_path / "events.jsonl", events, counters)
        with open(path, "a") as fh:
            fh.write('{"type": "span", "name": "torn')  # crashed mid-write
        loaded_events, loaded_counters = telemetry.load_events_jsonl(path)
        assert loaded_events == events
        assert loaded_counters["engine"]["runs"] == 2

    def test_chrome_trace_schema(self):
        events, _ = self._sample_events()
        trace = telemetry.chrome_trace(events)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == len(events)
        assert meta and all(e["name"] == "process_name" for e in meta)
        for e in complete:
            # the trace-event schema: name/cat/ph/ts/dur/pid/tid, µs units
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(e)
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        # rebased: the earliest span starts at ts 0
        assert min(e["ts"] for e in complete) == 0.0
        json.dumps(trace)  # must be serialisable as-is

    def test_chrome_trace_preserves_parent_links_in_args(self):
        events, _ = self._sample_events()
        trace = telemetry.chrome_trace(events)
        rep = next(e for e in trace["traceEvents"] if e["name"] == "rep")
        exp = next(e for e in trace["traceEvents"] if e["name"] == "experiment")
        assert rep["args"]["parent"] == exp["args"]["id"]

    def test_prometheus_text_format(self):
        _, counters = self._sample_events()
        text = telemetry.prometheus_text(counters)
        assert "# HELP repro_engine_total " in text
        assert "# TYPE repro_engine_total counter" in text
        assert 'repro_engine_total{counter="runs"} 2' in text

    def test_prometheus_text_sanitizes_names_and_labels(self):
        counters = {"my.dotted-ns": {"odd-key.name": 1.5}}
        text = telemetry.prometheus_text(counters)
        assert "# TYPE repro_my_dotted_ns_total counter" in text
        # the counter key survives verbatim as a label, not a name part
        assert 'repro_my_dotted_ns_total{counter="odd-key.name"} 1.5' in text
        # every non-comment line's metric name is scrape-legal
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name = line.split("{")[0]
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), name

    def test_prometheus_text_help_registry(self):
        telemetry.set_counter_help("engine", "simulated engine activity")
        try:
            text = telemetry.prometheus_text({"engine": {"runs": 1}})
            assert "# HELP repro_engine_total simulated engine activity" in text
        finally:
            telemetry.set_counter_help(
                "engine", "repro engine counters, one series per counter label"
            )

    def test_summarize_text_renders_span_table(self):
        events, counters = self._sample_events()
        text = telemetry.summarize_text(events, counters)
        assert "experiment" in text and "rep" in text
        assert "engine.runs" in text

    def test_export_all_writes_three_formats(self, tmp_path):
        self._sample_events()
        paths = telemetry.export_all(tmp_path / "telem")
        assert paths["events"].exists()
        assert paths["chrome"].exists()
        assert paths["prometheus"].exists()
        trace = json.loads(paths["chrome"].read_text())
        assert trace["traceEvents"]

    def test_export_all_without_directory_raises(self):
        with pytest.raises(ValueError):
            telemetry.export_all()


# ----------------------------------------------------------------------
# journal duration/attempt fields
# ----------------------------------------------------------------------
class TestJournalFields:
    def test_record_done_carries_duration_and_attempt(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        journal.record_done("k1", duration_s=1.25, attempt=1, label="cell")
        journal.record_done("k2", duration_s=0.002, attempt=0)
        lines = [json.loads(x) for x in journal.path.read_text().splitlines()]
        assert lines[0]["duration_s"] == 1.25 and lines[0]["attempt"] == 1
        assert lines[1]["attempt"] == 0

    def test_record_failure_carries_attempts(self, tmp_path):
        journal = CampaignJournal(tmp_path / "j.jsonl")
        record = FailureRecord(
            index=3, phase="rep", error="Boom", message="m",
            traceback_digest="-", attempts=3, wall_time=0.5,
        )
        journal.record_failure("k1", record, duration_s=0.7)
        (line,) = [json.loads(x) for x in journal.path.read_text().splitlines()]
        assert line["attempt"] == 3 and line["duration_s"] == 0.7

    def test_overhead_tolerates_old_journal_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        old_done = json.dumps({"status": "done", "key": "old", "label": "x"})
        old_fail = json.dumps(
            {"status": "failed", "key": "old2", "failure": {"attempts": 2}}
        )
        path.write_text(old_done + "\n" + old_fail + "\n")
        journal = CampaignJournal(path)
        journal.record_done("new", duration_s=2.0, attempt=1)
        journal.record_done("hit", duration_s=0.5, attempt=0)
        with open(path, "a") as fh:
            fh.write('{"torn')  # crashed mid-append
        overhead = journal.overhead()
        assert overhead["cells_done"] == 3
        assert overhead["cells_failed"] == 1
        assert overhead["run_s"] == pytest.approx(2.0)
        assert overhead["hit_s"] == pytest.approx(0.5)
        assert overhead["retry_attempts"] == 1  # from the old failure's attempts=2

    def test_cache_journals_duration_and_attempt(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        journal = CampaignJournal(tmp_path / "j.jsonl")
        cache = ResultCache(root=tmp_path / "c", journal=journal)
        cache.get_or_run(spec(), executor=SerialExecutor())
        journal.completed.clear()  # allow the hit to journal under the same key
        cache.get_or_run(spec(), executor=SerialExecutor())
        lines = [json.loads(x) for x in journal.path.read_text().splitlines()]
        assert lines[0]["attempt"] == 1 and lines[0]["duration_s"] > 0
        assert lines[1]["attempt"] == 0
        overhead = journal.overhead()
        assert overhead["run_s"] > 0 and overhead["hit_s"] >= 0


# ----------------------------------------------------------------------
# non-interference: golden slice and chaos run, telemetry enabled
# ----------------------------------------------------------------------
def _golden_fixture(name):
    data = json.loads(_FIXTURES.read_text())
    return {c["name"]: c for c in data["cases"]}[name]


_GOLDEN_SLICE = [
    c for c in build_cases()
    if c["name"] in ("intel-schedbench-static", "intel-replay", "amd-composite-stack")
]


class TestNonInterference:
    @pytest.mark.parametrize("case", _GOLDEN_SLICE, ids=lambda c: c["name"])
    def test_golden_slice_bit_identical_with_telemetry(self, case):
        telemetry.configure(enabled=True)
        actual = run_case(case)
        expected = _golden_fixture(case["name"])
        assert actual["reps"] == expected["reps"]
        assert telemetry.events_snapshot(), "telemetry was supposed to be on"

    def test_chaos_run_converges_bit_identically_with_telemetry(self, monkeypatch):
        reference = run_experiment(spec(seed=7), executor=SerialExecutor())
        assert telemetry.events_snapshot() == []
        telemetry.configure(enabled=True)
        monkeypatch.setenv("REPRO_CHAOS", "raise:11:0.6")
        policy = FaultPolicy(on_failure="retry", max_retries=3, backoff_base=0.0)
        disturbed = run_experiment(
            spec(seed=7), executor=SerialExecutor(), policy=policy
        )
        assert [t.hex() for t in disturbed.times] == [t.hex() for t in reference.times]
        chaos_counts = telemetry.counters_snapshot().get("chaos", {})
        assert chaos_counts.get("injected_faults", 0) > 0
        retry_spans = [e for e in telemetry.events_snapshot() if e["name"] == "retry"]
        assert retry_spans, "chaos retries should surface as retry spans"
        errored = [e for e in telemetry.events_snapshot() if e.get("error")]
        assert errored, "the injected failures should tag spans with errors"
