"""Unit tests for noise-config generation (paper Fig. 5)."""

import pytest

from repro.core.config import ConfigEvent, NoiseConfig, generate_config
from repro.core.events import EventType
from repro.core.merge import MergeStrategy
from repro.core.profile import build_profile
from repro.core.trace import Trace


def make_event(**kw):
    defaults = dict(
        start=0.1,
        duration=1e-3,
        policy="SCHED_OTHER",
        rt_priority=0,
        weight=1.0,
        etype=EventType.THREAD,
        source="kworker",
    )
    defaults.update(kw)
    return ConfigEvent(**defaults)


class TestConfigEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_event(duration=0.0)
        with pytest.raises(ValueError):
            make_event(start=-1.0)
        with pytest.raises(ValueError):
            make_event(policy="SCHED_RR")

    def test_dict_roundtrip(self):
        e = make_event(policy="SCHED_FIFO", rt_priority=90, etype=EventType.IRQ)
        back = ConfigEvent.from_dict(e.to_dict())
        assert back == e

    def test_dict_uses_paper_field_names(self):
        d = make_event().to_dict()
        assert "start_time" in d and "duration" in d and "policy" in d


class TestNoiseConfig:
    def test_counts(self):
        cfg = NoiseConfig({0: [make_event()], 1: [make_event(), make_event(start=0.5)]})
        assert cfg.n_cpus == 2
        assert cfg.n_events == 3

    def test_empty_cpu_lists_dropped(self):
        cfg = NoiseConfig({0: [make_event()], 1: []})
        assert cfg.n_cpus == 1

    def test_events_sorted_within_cpu(self):
        cfg = NoiseConfig({0: [make_event(start=0.5), make_event(start=0.1)]})
        starts = [e.start for e in cfg.events_per_cpu[0]]
        assert starts == sorted(starts)

    def test_total_busy_time(self):
        cfg = NoiseConfig({0: [make_event(duration=1e-3), make_event(start=0.5, duration=2e-3)]})
        assert cfg.total_busy_time() == pytest.approx(3e-3)

    def test_window(self):
        cfg = NoiseConfig({0: [make_event(start=0.1, duration=0.01)], 1: [make_event(start=0.5, duration=0.02)]})
        assert cfg.window() == pytest.approx(0.42)

    def test_json_roundtrip(self):
        cfg = NoiseConfig(
            {2: [make_event(policy="SCHED_FIFO", rt_priority=50, etype=EventType.SOFTIRQ)]},
            meta={"merge_strategy": "improved"},
        )
        back = NoiseConfig.from_json(cfg.to_json())
        assert back.n_events == 1
        assert back.meta["merge_strategy"] == "improved"
        assert back.events_per_cpu[2][0].policy == "SCHED_FIFO"

    def test_json_structure_matches_fig5(self):
        import json

        cfg = NoiseConfig({0: [make_event()]})
        payload = json.loads(cfg.to_json())
        assert "threads" in payload
        assert payload["threads"][0]["cpu"] == 0
        assert "noise_events" in payload["threads"][0]

    def test_save_load(self, tmp_path):
        cfg = NoiseConfig({0: [make_event()]})
        path = tmp_path / "cfg.json"
        cfg.save(path)
        assert NoiseConfig.load(path).n_events == 1


class TestGenerateConfig:
    def _worst_and_profile(self):
        hum = [
            Trace.from_records(
                [(0, int(EventType.THREAD), "k", i * 0.1, 1e-4) for i in range(10)],
                1.0,
            )
            for _ in range(9)
        ]
        worst = Trace.from_records(
            [(0, int(EventType.THREAD), "k", i * 0.1, 1e-4) for i in range(10)]
            + [
                (1, int(EventType.THREAD), "snapd", 0.4, 20e-3),
                (1, int(EventType.IRQ), "nic", 0.45, 1e-3),
            ],
            1.3,
        )
        profile = build_profile(hum + [worst])
        return worst, profile

    def test_residual_becomes_config(self):
        worst, profile = self._worst_and_profile()
        cfg = generate_config(worst, profile)
        assert cfg.n_events == 2
        assert set(cfg.events_per_cpu) == {1}

    def test_policies_assigned_by_class(self):
        worst, profile = self._worst_and_profile()
        cfg = generate_config(worst, profile)
        policies = {e.source: e.policy for e in cfg.events_per_cpu[1]}
        assert policies["snapd"] == "SCHED_OTHER"
        assert policies["nic"] == "SCHED_FIFO"

    def test_improved_weights_thread_noise(self):
        worst, profile = self._worst_and_profile()
        cfg = generate_config(worst, profile, merge=MergeStrategy.IMPROVED)
        snapd = next(e for e in cfg.events_per_cpu[1] if e.source == "snapd")
        assert snapd.weight > 1.0

    def test_min_duration_filters(self):
        worst, profile = self._worst_and_profile()
        cfg = generate_config(worst, profile, min_duration=50e-3)
        assert cfg.n_events == 0

    def test_meta_provenance(self):
        worst, profile = self._worst_and_profile()
        cfg = generate_config(worst, profile, meta={"config_idx": 1})
        assert cfg.meta["merge_strategy"] == "improved"
        assert cfg.meta["config_idx"] == 1
        assert cfg.meta["worst_case_exec_time"] == pytest.approx(1.3)
