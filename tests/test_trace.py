"""Unit tests for trace containers and OSnoise-format I/O."""

import numpy as np
import pytest

from repro.core.events import EventType
from repro.core.trace import Trace, TraceSet


def make_trace(records=None, exec_time=1.0):
    if records is None:
        records = [
            (5, int(EventType.IRQ), "local_timer:236", 0.001, 310e-9),
            (10, int(EventType.SOFTIRQ), "RCU:9", 0.002, 140e-9),
            (13, int(EventType.THREAD), "kworker/13:1", 0.003, 3760e-9),
        ]
    return Trace.from_records(records, exec_time)


class TestConstruction:
    def test_from_records(self):
        t = make_trace()
        assert t.n_events == 3
        assert t.exec_time == 1.0

    def test_events_sorted_by_start(self):
        t = make_trace(
            [
                (0, 0, "b", 0.5, 1e-6),
                (0, 0, "a", 0.1, 1e-6),
            ]
        )
        assert list(t.starts) == [0.1, 0.5]

    def test_sources_interned(self):
        t = make_trace(
            [
                (0, 0, "x", 0.1, 1e-6),
                (1, 0, "x", 0.2, 1e-6),
            ]
        )
        assert t.sources == ["x"]
        assert set(t.source_ids) == {0}

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ValueError):
            Trace(
                np.array([0]),
                np.array([0, 1]),
                np.array([0]),
                np.array([0.0]),
                np.array([1e-6]),
                ["s"],
                1.0,
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            make_trace([(0, 0, "x", 0.1, -1e-6)])

    def test_rejects_nonpositive_exec_time(self):
        with pytest.raises(ValueError):
            make_trace(exec_time=0.0)

    def test_empty_trace_ok(self):
        t = make_trace([])
        assert t.n_events == 0
        assert t.total_noise_time() == 0.0


class TestQueries:
    def test_total_noise_time(self):
        t = make_trace()
        assert t.total_noise_time() == pytest.approx(310e-9 + 140e-9 + 3760e-9)

    def test_noise_time_per_cpu(self):
        t = make_trace()
        per_cpu = t.noise_time_per_cpu(16)
        assert per_cpu[5] == pytest.approx(310e-9)
        assert per_cpu[13] == pytest.approx(3760e-9)
        assert per_cpu[0] == 0.0

    def test_events_of_source(self):
        t = make_trace()
        mask = t.events_of_source("RCU:9")
        assert mask.sum() == 1
        assert t.events_of_source("nothing").sum() == 0

    def test_select_subsets_and_reinterns(self):
        t = make_trace()
        sub = t.select(t.etypes == int(EventType.THREAD))
        assert sub.n_events == 1
        assert sub.sources == ["kworker/13:1"]

    def test_iter_records_roundtrip(self):
        t = make_trace()
        rows = list(t.iter_records())
        assert rows[0][1] is EventType.IRQ
        rebuilt = Trace.from_records(
            [(c, int(e), s, st, d) for c, e, s, st, d in rows], t.exec_time
        )
        assert rebuilt.n_events == t.n_events


class TestCompressTime:
    def test_durations_preserved(self):
        t = make_trace()
        dense = t.compress_time(4.0)
        assert list(dense.durations) == list(t.durations)
        assert dense.n_events == t.n_events

    def test_window_shrinks(self):
        t = make_trace()
        dense = t.compress_time(2.0)
        span = t.starts[-1] - t.starts[0]
        dense_span = dense.starts[-1] - dense.starts[0]
        assert dense_span == pytest.approx(span / 2.0)

    def test_origin_anchors_first_event(self):
        t = make_trace()
        dense = t.compress_time(10.0)
        assert dense.starts[0] == pytest.approx(t.starts[0])

    def test_meta_records_factor(self):
        assert make_trace().compress_time(3.0).meta["time_compressed"] == 3.0

    def test_identity_factor(self):
        t = make_trace()
        same = t.compress_time(1.0)
        assert list(same.starts) == list(t.starts)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            make_trace().compress_time(0.0)

    def test_empty_trace(self):
        t = make_trace([])
        assert t.compress_time(2.0).n_events == 0


class TestOsnoiseText:
    def test_render_matches_figure3_layout(self):
        text = make_trace().to_osnoise_text()
        assert "irq_noise" in text
        assert "local_timer:236" in text
        assert text.splitlines()[0].startswith("CPU")

    def test_limit(self):
        text = make_trace().to_osnoise_text(limit=1)
        assert len(text.splitlines()) == 2

    def test_roundtrip(self):
        t = make_trace()
        parsed = Trace.parse_osnoise_text(t.to_osnoise_text(), exec_time=1.0)
        assert parsed.n_events == t.n_events
        assert set(parsed.sources) == set(t.sources)

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            Trace.parse_osnoise_text("000 bogus", exec_time=1.0)


class TestJson:
    def test_roundtrip(self):
        t = make_trace()
        t.meta["anomaly"] = "snapd"
        back = Trace.from_json(t.to_json())
        assert back.n_events == t.n_events
        assert back.meta["anomaly"] == "snapd"
        np.testing.assert_allclose(back.durations, t.durations)


class TestTraceSet:
    def test_worst_case_is_longest(self):
        ts = TraceSet([make_trace(exec_time=x) for x in (1.0, 3.0, 2.0)])
        assert ts.worst_case().exec_time == 3.0
        assert ts.worst_case_index() == 1

    def test_mean_exec_time(self):
        ts = TraceSet([make_trace(exec_time=x) for x in (1.0, 3.0)])
        assert ts.mean_exec_time() == 2.0

    def test_iteration_and_indexing(self):
        ts = TraceSet([make_trace(), make_trace()])
        assert len(ts) == 2
        assert ts[0].n_events == 3
        assert len(list(ts)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceSet([])
