"""Integration tests for the end-to-end pipeline (paper §4)."""

import pytest

from repro.core.merge import MergeStrategy
from repro.core.pipeline import NoiseInjectionPipeline
from repro.harness.experiment import ExperimentSpec


def spec(**kw):
    defaults = dict(
        platform="intel-9700kf",
        workload="nbody",
        model="omp",
        strategy="Rm",
        seed=42,
        anomaly_prob=0.2,
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def pipeline():
    pipe = NoiseInjectionPipeline(spec(), collect_reps=20, inject_reps=6)
    pipe.build_config()
    return pipe


class TestPipeline:
    def test_config_built(self, pipeline):
        assert pipeline.config is not None
        assert pipeline.config.n_events > 0
        assert pipeline.collection.worst_case_degradation() > 0.02

    def test_injection_slows_execution(self, pipeline):
        injected = pipeline.inject(spec(reps=6))
        assert injected.mean > pipeline.collection.mean_exec_time

    def test_replication_accuracy_reasonable(self, pipeline):
        result = pipeline.run() if pipeline.collection is None else None
        injected = pipeline.inject(spec(reps=8))
        from repro.core.accuracy import replication_accuracy

        acc = replication_accuracy(injected.mean, pipeline.collection.worst_exec_time)
        # paper's bar: most configs within 8%, all within ~26%
        assert acc < 0.30

    def test_cross_strategy_injection(self, pipeline):
        # The same config can drive any strategy (Tables 3-5 usage).
        hk = pipeline.inject(spec(strategy="RmHK2", reps=6))
        rm = pipeline.inject(spec(strategy="Rm", reps=6))
        assert hk.injected and rm.injected

    def test_housekeeping_mitigates(self, pipeline):
        from repro.harness.experiment import run_experiment

        rm_base = run_experiment(spec(reps=6, seed=77, anomaly_prob=0.0))
        hk_base = run_experiment(spec(strategy="RmHK2", reps=6, seed=77, anomaly_prob=0.0))
        rm_inj = pipeline.inject(spec(reps=6))
        hk_inj = pipeline.inject(spec(strategy="RmHK2", reps=6))
        rm_delta = rm_inj.mean / rm_base.mean - 1.0
        hk_delta = hk_inj.mean / hk_base.mean - 1.0
        assert hk_delta < rm_delta

    def test_sycl_more_resilient(self, pipeline):
        from repro.harness.experiment import run_experiment

        omp_base = run_experiment(spec(reps=6, seed=77, anomaly_prob=0.0))
        sycl_base = run_experiment(spec(model="sycl", reps=6, seed=77, anomaly_prob=0.0))
        omp_inj = pipeline.inject(spec(reps=6))
        sycl_inj = pipeline.inject(spec(model="sycl", reps=6))
        omp_delta = omp_inj.mean / omp_base.mean - 1.0
        sycl_delta = sycl_inj.mean / sycl_base.mean - 1.0
        assert sycl_delta < omp_delta

    def test_inject_before_build_rejected(self):
        pipe = NoiseInjectionPipeline(spec())
        with pytest.raises(RuntimeError):
            pipe.inject()

    def test_run_returns_summary(self):
        pipe = NoiseInjectionPipeline(spec(seed=43), collect_reps=12, inject_reps=4)
        result = pipe.run()
        text = result.summary()
        assert "baseline" in text and "injected" in text
        assert result.accuracy >= 0.0
        assert result.degradation_pct == pytest.approx(
            (result.injected_mean / result.baseline_mean - 1) * 100
        )

    def test_merge_strategy_flows_to_config(self):
        pipe = NoiseInjectionPipeline(
            spec(seed=44), merge=MergeStrategy.NAIVE, collect_reps=10, inject_reps=3
        )
        pipe.build_config()
        assert pipe.config.meta["merge_strategy"] == "naive"
