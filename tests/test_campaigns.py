"""Campaign smoke tests at tiny repetition counts.

These validate wiring and shape invariants, not the paper's numbers —
the benchmarks regenerate those at realistic scale.
"""

import pytest

from repro.harness import campaigns
from repro.harness.cache import ResultCache
from repro.mitigation.strategies import STRATEGY_NAMES


@pytest.fixture
def settings(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BASELINE_REPS", "4")
    monkeypatch.setenv("REPRO_INJECT_REPS", "3")
    return campaigns.default_settings(
        seed=2025, collect_reps=6, collect_batches=2, cache=ResultCache(tmp_path)
    )


class TestTable1:
    def test_shape_and_render(self, settings):
        r = campaigns.table1(settings)
        assert set(r.rows) == {"nbody", "babelstream", "minife"}
        for off, on, pct in r.rows.values():
            assert on >= off > 0
            assert pct < 1.0  # sub-1% like the paper
        assert "Table 1" in r.render()


class TestTable2:
    def test_all_cells_present(self, settings):
        r = campaigns.table2(settings, platforms=("intel-9700kf",), workloads=("nbody",))
        assert set(r.sds) == {"omp", "sycl"}
        for model in ("omp", "sycl"):
            assert set(r.sds[model]) == set(STRATEGY_NAMES)
            assert all(v >= 0 for v in r.sds[model].values())
        assert "(paper)" in r.render()


class TestInjectionTables:
    def test_intel_rows(self, settings):
        r = campaigns.injection_table(
            "nbody", settings, platforms=("intel-9700kf",), strategies=("Rm", "RmHK2")
        )
        rows = r.rows_by_platform["intel-9700kf"]
        assert [row.label for row in rows] == ["OMP #1", "SYCL #1", "OMP #2", "SYCL #2"]
        for row in rows:
            assert set(row.deltas) == {"Rm", "RmHK2"}
        assert "Table 3" in r.render()

    def test_amd_minife_has_eight_rows(self, settings):
        groups = campaigns._row_groups("amd-9950x3d", "minife")
        assert len(groups) == 8
        assert ("SYCL SMT #2", "sycl", True, 2) in groups

    def test_amd_nbody_has_four_rows(self, settings):
        assert len(campaigns._row_groups("amd-9950x3d", "nbody")) == 4

    def test_deltas_export(self, settings):
        r = campaigns.injection_table(
            "nbody", settings, platforms=("intel-9700kf",), strategies=("Rm",)
        )
        deltas = r.deltas()
        assert ("intel-9700kf", "OMP #1", "Rm") in deltas


class TestTable6:
    def test_aggregates_models(self, settings):
        t3 = campaigns.injection_table(
            "nbody", settings, platforms=("intel-9700kf",), strategies=("Rm",)
        )
        r = campaigns.table6(settings, tables=[t3])
        assert "omp" in r.averages and "sycl" in r.averages
        assert isinstance(r.sycl_advantage(), float)
        assert "Table 6" in r.render()


class TestConfigStore:
    def test_config_cached_on_disk(self, settings):
        info1 = campaigns.build_noise_config(
            settings, "intel-9700kf", "nbody", ("Rm", "omp", True), idx=1
        )
        info2 = campaigns.build_noise_config(
            settings, "intel-9700kf", "nbody", ("Rm", "omp", True), idx=1
        )
        assert info1.worst_exec_time == info2.worst_exec_time
        assert info1.config.n_events == info2.config.n_events

    def test_distinct_indices_distinct_configs(self, settings):
        a = campaigns.build_noise_config(
            settings, "intel-9700kf", "nbody", ("Rm", "omp", True), idx=1
        )
        b = campaigns.build_noise_config(
            settings, "intel-9700kf", "nbody", ("Rm", "omp", True), idx=2
        )
        assert a.worst_exec_time != b.worst_exec_time

    def test_source_label_recorded(self, settings):
        info = campaigns.build_noise_config(
            settings, "intel-9700kf", "nbody", ("TP", "omp", True), idx=1
        )
        assert info.source_label == "TP-OMP"


class TestFigures:
    def test_figure1_series(self, settings):
        r = campaigns.figure1(settings, schedules=("static",), chunks=(1,))
        assert set(r.series) == {"A64FX:w/o", "A64FX:reserved"}
        assert r.x_labels == ["st:1"]
        assert "Figure 1" in r.render()

    def test_figure2_series(self, settings):
        r = campaigns.figure2(settings, thread_counts=(8,))
        assert r.x_labels == ["8"]
        assert all(len(pts) == 1 for pts in r.series.values())

    def test_variability_ratio_positive(self, settings):
        r = campaigns.figure1(settings, schedules=("static",), chunks=(1,))
        assert r.variability_ratio() > 0


class TestPaperReference:
    def test_table7_configs_cover_paper_rows(self):
        from repro.harness import paper_reference as paper

        assert set(campaigns._TABLE7_CONFIGS) == set(paper.TABLE7)

    def test_table7_platform_split_matches_paper(self):
        # six Intel configs, four AMD (paper §5.2)
        plats = [v[0] for v in campaigns._TABLE7_CONFIGS.values()]
        assert plats.count("intel-9700kf") == 6
        assert plats.count("amd-9950x3d") == 4

    def test_reference_tables_have_all_strategy_columns(self):
        from repro.harness import paper_reference as paper
        from repro.mitigation.strategies import STRATEGY_NAMES

        for table in (paper.TABLE3, paper.TABLE4, paper.TABLE5):
            for plat, rows in table.items():
                for label, cells in rows.items():
                    assert set(cells["exec"]) == set(STRATEGY_NAMES)
                    assert set(cells["delta"]) == set(STRATEGY_NAMES)

    def test_row_groups_match_reference_labels(self):
        from repro.harness import paper_reference as paper

        for wl, table in (("nbody", paper.TABLE3), ("babelstream", paper.TABLE4), ("minife", paper.TABLE5)):
            for plat, rows in table.items():
                labels = [g[0] for g in campaigns._row_groups(plat, wl)]
                assert set(labels) == set(rows), (wl, plat)


class TestStudies:
    def test_runlevel3(self, settings):
        r = campaigns.runlevel3_study(settings)
        assert r.sd_gui >= 0 and r.sd_runlevel3 >= 0
        assert "Runlevel-3" in r.render()
