"""Shared case matrix for the golden-equivalence suite.

The scheduler/engine fast path carries a hard bit-identity contract:
any optimization must reproduce execution times, traces, and scheduler
counters *exactly* (same floats, same event streams) for every seed,
topology, and noise stack.  This module defines the reference matrix —
``tools/gen_golden_fixtures.py`` records it into
``tests/fixtures/golden_equivalence.json`` and
``tests/test_golden_equivalence.py`` replays it against the fixtures.

Cases deliberately cross the axes that stress different scheduler
paths: SMT vs not, NUMA vs single-node, FIFO preemption vs fair
sharing, memory saturation vs compute-bound, static barriers vs
work-stealing pools, housekeeping (idle-CPU pull/migration) vs fully
packed machines, and every registered noise mechanism.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.harness.experiment import ExperimentSpec
from repro.noise.base import NoiseStack

__all__ = ["FIXTURE_PATH", "build_cases", "run_case", "digest_trace"]

FIXTURE_PATH = "tests/fixtures/golden_equivalence.json"


def _replay_config(n_cpus: int = 4, n_events: int = 25) -> NoiseConfig:
    """A deterministic mixed-policy replay config (no RNG involved)."""
    events: dict[int, list[ConfigEvent]] = {}
    for cpu in range(n_cpus):
        evts = []
        for i in range(n_events):
            start = 0.002 + 0.004 * i + 0.0007 * cpu
            if i % 3 == 0:
                evts.append(
                    ConfigEvent(
                        start=start,
                        duration=25e-6 + 2e-6 * (i % 5),
                        policy="SCHED_FIFO",
                        rt_priority=90,
                        etype=EventType.IRQ,
                        weight=1.0,
                        source=f"golden-irq-{cpu}",
                    )
                )
            else:
                evts.append(
                    ConfigEvent(
                        start=start,
                        duration=120e-6 + 10e-6 * (i % 4),
                        policy="SCHED_OTHER",
                        rt_priority=0,
                        etype=EventType.THREAD,
                        weight=2.0,
                        source=f"golden-kworker/{cpu}",
                    )
                )
        events[cpu] = evts
    return NoiseConfig(events, meta={"origin": "golden-equivalence"})


def _noise(kind: Optional[str]):
    """Build the named noise stack (kept lazy: sources import extensions)."""
    if kind is None:
        return None
    if kind == "replay":
        from repro.noise.sources import TraceReplaySource

        return NoiseStack([TraceReplaySource(_replay_config())])
    if kind == "io":
        from repro.extensions.ionoise import IoBurst, IoNoiseConfig
        from repro.noise.sources import IoNoiseSource

        return NoiseStack(
            [
                IoNoiseSource(
                    IoNoiseConfig(
                        [
                            IoBurst(start=0.004, duration=0.05, irq_cpus=(0, 1)),
                            IoBurst(start=0.08, duration=0.04, irq_cpus=(2,)),
                        ]
                    )
                )
            ]
        )
    if kind == "hpas":
        from repro.noise.sources import HpasCpuOccupySource

        return NoiseStack(
            [HpasCpuOccupySource(start=0.003, duration=0.1, cpus=(0, 2), utilization=0.8)]
        )
    if kind == "composite":
        from repro.extensions.ionoise import IoBurst, IoNoiseConfig
        from repro.noise.sources import IoNoiseSource, TraceReplaySource

        return NoiseStack(
            [
                TraceReplaySource(_replay_config(n_cpus=2, n_events=12)),
                IoNoiseSource(
                    IoNoiseConfig([IoBurst(start=0.01, duration=0.05, irq_cpus=(0,))])
                ),
            ]
        )
    raise ValueError(f"unknown golden noise kind {kind!r}")


def build_cases() -> list[dict]:
    """(name, spec kwargs, noise kind) for every golden case.

    Each entry gets a distinct seed; together the matrix covers >20
    seeds across all five platform topologies and every major noise
    mechanism.
    """
    cases = [
        # --- baseline, no injection: every topology, both models -----
        dict(name="intel-schedbench-static", platform="intel-9700kf", workload="schedbench",
             seed=101, workload_params={"schedule": "static", "repeats": 4}),
        dict(name="intel-schedbench-dynamic", platform="intel-9700kf", workload="schedbench",
             seed=102, workload_params={"schedule": "dynamic", "chunk": 64, "repeats": 4}),
        dict(name="intel-schedbench-guided-sycl", platform="intel-9700kf", workload="schedbench",
             seed=103, model="sycl", workload_params={"schedule": "guided", "repeats": 4}),
        dict(name="intel-nbody", platform="intel-9700kf", workload="nbody", seed=104,
             workload_params={"steps": 3}),
        dict(name="intel-babelstream-mem", platform="intel-9700kf", workload="babelstream",
             seed=105, workload_params={"iters": 12}),
        dict(name="intel-montecarlo", platform="intel-9700kf", workload="montecarlo", seed=106,
             workload_params={"batches": 4}),
        dict(name="amd-nbody-smt", platform="amd-9950x3d", workload="nbody", seed=107,
             workload_params={"steps": 2}),
        dict(name="amd-nbody-nosmt", platform="amd-9950x3d", workload="nbody", seed=108,
             use_smt=False, workload_params={"steps": 2}),
        dict(name="amd-schedbench-sycl", platform="amd-9950x3d", workload="schedbench",
             seed=109, model="sycl", workload_params={"repeats": 3}),
        dict(name="a64fx-minife", platform="a64fx", workload="minife", seed=110,
             workload_params={"cg_iters": 8}),
        dict(name="a64fx-reserved-minife", platform="a64fx-reserved", workload="minife",
             seed=111, workload_params={"cg_iters": 6}),
        dict(name="numa-heat", platform="hpc-2s64", workload="heat", seed=112,
             workload_params={"sweeps": 12}),
        # --- mitigation strategies (migration / housekeeping paths) --
        dict(name="intel-nbody-tp", platform="intel-9700kf", workload="nbody", seed=113,
             strategy="TP", workload_params={"steps": 3}),
        dict(name="intel-nbody-rmhk2", platform="intel-9700kf", workload="nbody", seed=114,
             strategy="RmHK2", workload_params={"steps": 3}),
        dict(name="amd-schedbench-tphk", platform="amd-9950x3d", workload="schedbench",
             seed=115, strategy="TPHK", workload_params={"repeats": 3}),
        dict(name="intel-nbody-threads3", platform="intel-9700kf", workload="nbody", seed=116,
             n_threads=3, workload_params={"steps": 3}),
        # --- environment variants -----------------------------------
        dict(name="intel-runlevel3", platform="intel-9700kf", workload="schedbench",
             seed=117, runlevel3=True, workload_params={"repeats": 4}),
        dict(name="intel-anomaly-forced", platform="intel-9700kf", workload="nbody",
             seed=118, anomaly_prob=1.0, workload_params={"steps": 3}),
        dict(name="intel-tracing-off", platform="intel-9700kf", workload="schedbench",
             seed=119, tracing=False, workload_params={"repeats": 4}),
        # --- injection: every registered mechanism -------------------
        dict(name="intel-replay", platform="intel-9700kf", workload="schedbench",
             seed=120, rt_throttle=False, noise="replay", workload_params={"repeats": 4}),
        dict(name="intel-replay-hk", platform="intel-9700kf", workload="schedbench",
             seed=121, strategy="RmHK2", rt_throttle=False, noise="replay",
             workload_params={"repeats": 4}),
        dict(name="intel-io-noise", platform="intel-9700kf", workload="nbody", seed=122,
             noise="io", workload_params={"steps": 3}),
        dict(name="intel-hpas-occupy", platform="intel-9700kf", workload="schedbench",
             seed=123, noise="hpas", workload_params={"repeats": 4}),
        dict(name="amd-composite-stack", platform="amd-9950x3d", workload="schedbench",
             seed=124, rt_throttle=False, noise="composite", workload_params={"repeats": 3}),
        dict(name="a64fx-replay-minife", platform="a64fx", workload="minife", seed=125,
             rt_throttle=False, noise="replay", workload_params={"cg_iters": 5}),
    ]
    return cases


def digest_trace(trace) -> str:
    """Stable content hash of a trace (arrays + interned sources)."""
    if trace is None:
        return "none"
    h = hashlib.sha256()
    for arr in (trace.cpus, trace.etypes, trace.source_ids, trace.starts, trace.durations):
        h.update(arr.tobytes())
    h.update("\x00".join(trace.sources).encode())
    h.update(float(trace.exec_time).hex().encode())
    return h.hexdigest()


def run_case(case: dict, reps: int = 2, policy=None, executor=None) -> dict:
    """Execute one golden case and return its observable signature.

    The signature pins everything an optimization could perturb:
    per-rep execution times (exact float hex), anomaly labels,
    migration/preemption counters, and a content hash of the full
    tracer output.

    ``policy`` / ``executor`` let the chaos suite replay the matrix
    through recovery paths — signatures must match the fixtures
    bitwise regardless.
    """
    from repro.harness.executor import SerialExecutor
    from repro.harness.experiment import run_experiment

    kwargs = {k: v for k, v in case.items() if k not in ("name", "noise")}
    spec = ExperimentSpec(reps=reps, **kwargs)
    noise = _noise(case.get("noise"))

    runs: list[dict] = []

    def on_run(index, run):
        runs.append(
            {
                "exec_time": float(run.exec_time).hex(),
                "anomaly": run.anomaly,
                "migrations": run.migrations,
                "preemptions": run.preemptions,
                "trace": digest_trace(run.trace),
            }
        )

    run_experiment(
        spec,
        noise=noise,
        executor=executor if executor is not None else SerialExecutor(),
        on_run=on_run,
        policy=policy,
    )
    return {"name": case["name"], "reps": runs}
