"""Failure-injection tests: malformed inputs and degenerate setups."""

import json

import pytest

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.core.trace import Trace
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.runtimes.base import Placement, Region
from repro.runtimes import get_runtime
from repro.sim.task import Task

from conftest import make_machine


class TestMalformedConfigs:
    def test_config_json_missing_threads(self):
        with pytest.raises(KeyError):
            NoiseConfig.from_json(json.dumps({"meta": {}}))

    def test_config_event_bad_policy_label(self):
        payload = {
            "meta": {},
            "threads": [
                {
                    "cpu": 0,
                    "noise_events": [
                        {
                            "start_time": 0.1,
                            "duration": 1e-3,
                            "policy": "SCHED_DEADLINE",
                            "rt_priority": 0,
                            "event_type": "thread_noise",
                        }
                    ],
                }
            ],
        }
        with pytest.raises(ValueError):
            NoiseConfig.from_json(json.dumps(payload))

    def test_config_event_bad_event_type(self):
        with pytest.raises(ValueError):
            ConfigEvent.from_dict(
                {
                    "start_time": 0.0,
                    "duration": 1e-3,
                    "policy": "SCHED_OTHER",
                    "rt_priority": 0,
                    "event_type": "dma_noise",
                }
            )

    def test_trace_json_garbage(self):
        with pytest.raises((json.JSONDecodeError, KeyError, TypeError)):
            Trace.from_json("{broken")


class TestDegenerateRuns:
    def test_runtime_with_zero_work_region(self):
        m = make_machine()
        rt = get_runtime("omp")
        placement = Placement(cpus=(0, 1), n_threads=2, pinned=True)
        rt.launch(m, iter([Region("empty", total_work=0.0)]), placement)
        m.engine.run()
        # barrier-only region still terminates
        assert m.engine.now > 0.0

    def test_single_thread_team(self):
        m = make_machine()
        rt = get_runtime("sycl")
        placement = Placement(cpus=(0,), n_threads=1, pinned=True)
        rt.launch(m, iter([Region("r", total_work=0.5, sycl_efficiency=1.0)]), placement)
        m.engine.run()
        assert m.engine.now == pytest.approx(0.5, rel=0.01)

    def test_more_cpus_than_threads_roaming(self):
        m = make_machine()
        rt = get_runtime("omp")
        placement = Placement(cpus=tuple(range(8)), n_threads=3, pinned=False)
        rt.launch(m, iter([Region("r", total_work=3.0)]), placement)
        m.engine.run()
        assert m.engine.now == pytest.approx(1.0, rel=0.01)

    def test_workload_with_single_repetition(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", reps=1, seed=0)
        rs = run_experiment(spec)
        assert rs.sd == 0.0
        assert rs.summary.n == 1

    def test_injection_config_for_missing_cpus_ignored_gracefully(self):
        # config references CPU 31 on an 8-CPU machine: the injector's
        # processes roam, so the hint is simply unusable and placement
        # falls back.
        cfg = NoiseConfig(
            {
                31: [
                    ConfigEvent(
                        start=0.1,
                        duration=0.05,
                        policy="SCHED_OTHER",
                        rt_priority=0,
                        weight=1.0,
                        etype=EventType.THREAD,
                        source="ghost",
                    )
                ]
            }
        )
        m = make_machine(tracing=True)

        def start(mm):
            w = Task("w", work=0.5, affinity=frozenset({0}), pinned=True)
            w.on_complete = lambda t: mm.workload_done()
            mm.scheduler.submit(w, cpu=0)
            from repro.core.injector import NoiseInjector

            NoiseInjector(cfg).launch(mm)

        result = m.run(start, expected_duration=0.5)
        assert "inject:ghost" in result.trace.sources

    def test_empty_workload_params_rejected_kwargs(self):
        spec = ExperimentSpec(
            platform="intel-9700kf",
            workload="nbody",
            reps=1,
            seed=0,
            workload_params={"bogus_param": 3},
        )
        with pytest.raises(TypeError):
            run_experiment(spec)


class TestNumericEdges:
    def test_tiny_durations_survive_trace_roundtrip(self):
        t = Trace.from_records([(0, 0, "x", 0.0, 1e-12)], 1.0)
        back = Trace.from_json(t.to_json())
        assert back.durations[0] == pytest.approx(1e-12)

    def test_trace_with_many_identical_timestamps(self):
        records = [(i % 4, 2, "k", 0.5, 1e-6) for i in range(100)]
        t = Trace.from_records(records, 1.0)
        assert t.n_events == 100
        assert (t.starts == 0.5).all()

    def test_long_run_float_accumulation(self):
        # hours of virtual time: rate integration must not drift
        m = make_machine()
        w = Task("w", work=3600.0, affinity=frozenset({0}), pinned=True)
        done = {}
        w.on_complete = lambda t: done.setdefault("t", m.engine.now)

        def start(mm):
            mm.scheduler.submit(w, cpu=0)
            w2 = Task("end", work=3600.0, affinity=frozenset({1}), pinned=True)
            w2.on_complete = lambda t: mm.workload_done()
            mm.scheduler.submit(w2, cpu=1)

        m.run(start, expected_duration=3600.0)
        assert done["t"] == pytest.approx(3600.0, rel=1e-9)
