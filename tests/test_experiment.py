"""Unit tests for the experiment harness."""

import numpy as np
import pytest

from repro.harness.experiment import (
    ExperimentSpec,
    default_baseline_reps,
    default_inject_reps,
    run_experiment,
)


class TestSpec:
    def test_label(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", model="omp", strategy="Rm")
        assert "Rm-OMP" in spec.label()
        assert "nbody" in spec.label()

    def test_with_updates(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody")
        other = spec.with_(strategy="TPHK2")
        assert other.strategy == "TPHK2"
        assert spec.strategy == "Rm"

    def test_resolved_reps_explicit(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", reps=17)
        assert spec.resolved_reps() == 17
        assert spec.resolved_reps(injecting=True) == 17

    def test_resolved_reps_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BASELINE_REPS", "9")
        monkeypatch.setenv("REPRO_INJECT_REPS", "4")
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody")
        assert spec.resolved_reps() == 9
        assert spec.resolved_reps(injecting=True) == 4
        assert default_baseline_reps() == 9
        assert default_inject_reps() == 4

    @pytest.mark.parametrize(
        "var,fn",
        [("REPRO_BASELINE_REPS", default_baseline_reps), ("REPRO_INJECT_REPS", default_inject_reps)],
    )
    def test_non_integer_rep_env_names_variable_and_value(self, monkeypatch, var, fn):
        monkeypatch.setenv(var, "lots")
        with pytest.raises(ValueError, match=rf"{var}.*'lots'"):
            fn()

    def test_blank_rep_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BASELINE_REPS", "  ")
        monkeypatch.delenv("REPRO_INJECT_REPS", raising=False)
        assert default_baseline_reps() == 60
        assert default_inject_reps() == 30


class TestRun:
    def test_reps_and_positive_times(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", reps=3, seed=1)
        rs = run_experiment(spec)
        assert len(rs.times) == 3
        assert (rs.times > 0).all()

    def test_deterministic_given_seed(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", reps=3, seed=5)
        a = run_experiment(spec)
        b = run_experiment(spec)
        np.testing.assert_array_equal(a.times, b.times)

    def test_different_seeds_differ(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", reps=3, seed=5)
        a = run_experiment(spec)
        b = run_experiment(spec.with_(seed=6))
        assert not np.array_equal(a.times, b.times)

    def test_on_run_sees_traces(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", reps=2, seed=1)
        seen = []
        run_experiment(spec, on_run=lambda i, r: seen.append((i, r.trace is not None)))
        assert seen == [(0, True), (1, True)]

    def test_tracing_off_no_traces(self):
        spec = ExperimentSpec(
            platform="intel-9700kf", workload="nbody", reps=1, seed=1, tracing=False
        )
        seen = []
        run_experiment(spec, on_run=lambda i, r: seen.append(r.trace))
        assert seen == [None]

    def test_n_threads_override(self):
        spec = ExperimentSpec(
            platform="intel-9700kf", workload="nbody", reps=1, seed=1, n_threads=4
        )
        rs4 = run_experiment(spec)
        rs8 = run_experiment(spec.with_(n_threads=None))
        assert rs4.mean > rs8.mean * 1.5

    def test_n_threads_over_mask_rejected(self):
        spec = ExperimentSpec(
            platform="intel-9700kf", workload="nbody", reps=1, seed=1, n_threads=9
        )
        with pytest.raises(ValueError):
            run_experiment(spec)

    def test_workload_params_forwarded(self):
        spec = ExperimentSpec(
            platform="intel-9700kf",
            workload="babelstream",
            reps=1,
            seed=1,
            workload_params={"iters": 2, "array_mb": 10},
        )
        rs = run_experiment(spec)
        assert rs.mean < 0.1

    def test_runlevel3_reduces_variability(self):
        spec = ExperimentSpec(
            platform="intel-9700kf", workload="nbody", reps=12, seed=3, anomaly_prob=0.0
        )
        gui = run_experiment(spec)
        quiet = run_experiment(spec.with_(runlevel3=True))
        # GUI sources add macro noise; without them the floor is lower.
        assert quiet.mean <= gui.mean

    def test_anomaly_prob_override(self):
        spec = ExperimentSpec(
            platform="intel-9700kf", workload="nbody", reps=4, seed=3, anomaly_prob=1.0
        )
        rs = run_experiment(spec)
        assert rs.anomaly_count() == 4

    def test_result_properties(self):
        spec = ExperimentSpec(platform="intel-9700kf", workload="nbody", reps=3, seed=1)
        rs = run_experiment(spec)
        assert rs.summary.n == 3
        assert rs.sd >= 0.0
        assert not rs.injected
