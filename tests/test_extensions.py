"""Unit tests for HPAS-style generators and memory-noise injection."""

import pytest

from repro.extensions import (
    MemoryNoiseConfig,
    MemoryNoiseEvent,
    MemoryNoiseInjector,
    cache_thrash,
    cpu_occupy,
    memory_bandwidth,
)
from repro.sim.task import Task

from conftest import make_machine


class TestMemoryNoiseEvents:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryNoiseEvent(start=-1, duration=0.1, bandwidth_gbs=10)
        with pytest.raises(ValueError):
            MemoryNoiseEvent(start=0, duration=0, bandwidth_gbs=10)
        with pytest.raises(ValueError):
            MemoryNoiseEvent(start=0, duration=0.1, bandwidth_gbs=0)

    def test_json_roundtrip(self):
        cfg = MemoryNoiseConfig(
            [MemoryNoiseEvent(0.1, 0.2, 15.0, source="hog")],
            meta={"generator": "membw"},
        )
        back = MemoryNoiseConfig.from_json(cfg.to_json())
        assert back.n_events == 1
        assert back.events[0].bandwidth_gbs == 15.0
        assert back.meta["generator"] == "membw"

    def test_traffic_accounting(self):
        cfg = MemoryNoiseConfig(
            [MemoryNoiseEvent(0.0, 0.5, 20.0), MemoryNoiseEvent(0.5, 0.5, 10.0)]
        )
        assert cfg.total_traffic_gb() == pytest.approx(15.0)

    def test_events_sorted(self):
        cfg = MemoryNoiseConfig(
            [MemoryNoiseEvent(0.5, 0.1, 1.0), MemoryNoiseEvent(0.1, 0.1, 1.0)]
        )
        assert cfg.events[0].start == 0.1


class TestMemoryNoiseInjection:
    def _run(self, config, mem_demand):
        """One streaming worker on cpu 0 (Intel quiet machine)."""
        m = make_machine(tracing=False)

        def start(mm):
            w = Task("w", work=1.0, mem_demand=mem_demand, affinity=frozenset({0}), pinned=True)
            w.on_complete = lambda t: mm.workload_done()
            mm.scheduler.submit(w, cpu=0)
            MemoryNoiseInjector(config).launch(mm)

        return m.run(start, expected_duration=1.5).exec_time

    def test_membw_noise_slows_streaming_workload(self):
        # workload pulls 30 GB/s on a 38 GB/s machine; a 20 GB/s hog on
        # another (idle) cpu saturates the bus
        quiet = self._run(
            MemoryNoiseConfig([MemoryNoiseEvent(5.0, 0.1, 20.0)]), mem_demand=30.0
        )
        noisy = self._run(
            MemoryNoiseConfig([MemoryNoiseEvent(0.0, 2.0, 20.0)]), mem_demand=30.0
        )
        assert noisy > quiet * 1.15

    def test_membw_noise_invisible_to_compute_workload(self):
        # the paper's asymmetry: CPU-idle memory hogs do not disturb
        # compute-bound threads
        quiet = self._run(
            MemoryNoiseConfig([MemoryNoiseEvent(5.0, 0.1, 20.0)]), mem_demand=0.0
        )
        noisy = self._run(
            MemoryNoiseConfig([MemoryNoiseEvent(0.0, 2.0, 20.0)]), mem_demand=0.0
        )
        assert noisy == pytest.approx(quiet, rel=1e-6)

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            MemoryNoiseInjector(MemoryNoiseConfig([]))

    def test_single_use(self):
        cfg = MemoryNoiseConfig([MemoryNoiseEvent(0.0, 0.1, 5.0)])
        inj = MemoryNoiseInjector(cfg)
        m = make_machine()

        def start(mm):
            w = Task("w", work=0.2, affinity=frozenset({0}), pinned=True)
            w.on_complete = lambda t: mm.workload_done()
            mm.scheduler.submit(w, cpu=0)
            inj.launch(mm)

        m.run(start, expected_duration=0.2)
        with pytest.raises(RuntimeError):
            inj.launch(m)


class TestHPASGenerators:
    def test_cpu_occupy_full(self):
        cfg = cpu_occupy(start=0.0, duration=0.5, cpus=(0, 1))
        assert cfg.n_cpus == 2
        assert cfg.n_events == 2
        assert cfg.total_busy_time() == pytest.approx(1.0)

    def test_cpu_occupy_square_wave(self):
        cfg = cpu_occupy(start=0.0, duration=0.1, cpus=(0,), utilization=0.5, period=10e-3)
        events = cfg.events_per_cpu[0]
        assert len(events) == 10
        assert sum(e.duration for e in events) == pytest.approx(0.05)

    def test_cpu_occupy_runs_as_other(self):
        cfg = cpu_occupy(start=0.0, duration=0.1, cpus=(0,))
        assert cfg.events_per_cpu[0][0].policy == "SCHED_OTHER"

    def test_cpu_occupy_validation(self):
        with pytest.raises(ValueError):
            cpu_occupy(0.0, 0.1, cpus=())
        with pytest.raises(ValueError):
            cpu_occupy(0.0, 0.1, cpus=(0,), utilization=0.0)
        with pytest.raises(ValueError):
            cpu_occupy(0.0, -1.0, cpus=(0,))

    def test_membw_splits_streams(self):
        cfg = memory_bandwidth(start=0.0, duration=1.0, bandwidth_gbs=30.0, streams=3)
        assert cfg.n_events == 3
        assert sum(e.bandwidth_gbs for e in cfg.events) == pytest.approx(30.0)

    def test_cache_thrash_per_cpu(self):
        cfg = cache_thrash(start=0.0, duration=0.5, cpus=(0, 1, 2))
        assert cfg.n_events == 3
        assert cfg.meta["generator"] == "cachecopy"

    def test_hpas_config_replayable_by_standard_injector(self):
        # the synthetic CPU hog replays through the paper's injector
        from repro.core.injector import NoiseInjector

        cfg = cpu_occupy(start=0.1, duration=0.2, cpus=(0,))
        m = make_machine()

        def start(mm):
            w = Task("w", work=0.5, affinity=frozenset({0}), pinned=True)
            w.on_complete = lambda t: mm.workload_done()
            mm.scheduler.submit(w, cpu=0)
            for c in range(1, 8):
                mm.scheduler.submit(Task(f"s{c}", affinity=frozenset({c}), pinned=True), cpu=c)
            NoiseInjector(cfg).launch(mm)

        result = m.run(start, expected_duration=1.0)
        # OTHER hog timeshares with the pinned worker: +~0.2s
        assert result.exec_time == pytest.approx(0.7, rel=0.05)
