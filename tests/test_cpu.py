"""Unit tests for CPU topology."""

import pytest

from repro.sim.cpu import Topology


class TestBasics:
    def test_logical_count_no_smt(self):
        assert Topology(n_physical=8).n_logical == 8

    def test_logical_count_smt2(self):
        assert Topology(n_physical=16, smt=2).n_logical == 32

    def test_all_cpus(self):
        assert Topology(n_physical=2, smt=2).all_cpus() == (0, 1, 2, 3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Topology(n_physical=0)
        with pytest.raises(ValueError):
            Topology(n_physical=4, smt=3)
        with pytest.raises(ValueError):
            Topology(n_physical=4, numa_nodes=3)

    def test_rejects_out_of_range_reserved(self):
        with pytest.raises(ValueError):
            Topology(n_physical=4, reserved_cpus=frozenset({9}))


class TestSiblings:
    def test_no_smt_has_no_sibling(self):
        topo = Topology(n_physical=4)
        assert topo.sibling(0) is None

    def test_smt_sibling_pairs(self):
        topo = Topology(n_physical=4, smt=2)
        assert topo.sibling(0) == 4
        assert topo.sibling(4) == 0
        assert topo.sibling(3) == 7

    def test_physical_core_mapping(self):
        topo = Topology(n_physical=4, smt=2)
        assert topo.physical_core(0) == 0
        assert topo.physical_core(5) == 1

    def test_primary_cpus(self):
        topo = Topology(n_physical=4, smt=2)
        assert topo.primary_cpus() == (0, 1, 2, 3)

    def test_cpu_range_checked(self):
        topo = Topology(n_physical=4)
        with pytest.raises(ValueError):
            topo.sibling(4)


class TestReserved:
    def test_user_cpus_excludes_reserved(self):
        topo = Topology(n_physical=6, reserved_cpus=frozenset({4, 5}))
        assert topo.user_cpus() == (0, 1, 2, 3)

    def test_all_cpus_includes_reserved(self):
        topo = Topology(n_physical=6, reserved_cpus=frozenset({4, 5}))
        assert len(topo.all_cpus()) == 6


class TestNuma:
    def test_node_of_cpu(self):
        topo = Topology(n_physical=8, numa_nodes=2)
        assert topo.numa_node(0) == 0
        assert topo.numa_node(4) == 1

    def test_numa_with_smt(self):
        topo = Topology(n_physical=4, smt=2, numa_nodes=2)
        # sibling lives in the same node as its physical core
        assert topo.numa_node(4) == topo.numa_node(0)

    def test_cpus_of_node(self):
        topo = Topology(n_physical=4, smt=2, numa_nodes=2)
        assert topo.cpus_of_node(0) == (0, 1, 4, 5)
        assert topo.cpus_of_node(1) == (2, 3, 6, 7)

    def test_node_range_checked(self):
        topo = Topology(n_physical=4, numa_nodes=2)
        with pytest.raises(ValueError):
            topo.cpus_of_node(2)
