-- The campaign-service queue schema as first released (PR 7): before
-- the sharding columns (parent/chunk_start/chunk_stop), before the
-- dead-letter columns (deaths/failure), and before the workers
-- registry table.  tests/test_queue_migration.py loads this into a
-- fresh SQLite file to prove that opening an old queue migrates it in
-- place, idempotently, with its pre-existing jobs still leasable.
CREATE TABLE IF NOT EXISTS jobs (
    key           TEXT PRIMARY KEY,
    spec          TEXT NOT NULL,
    noise         TEXT,
    label         TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'queued',
    priority      INTEGER NOT NULL DEFAULT 0,
    expected_s    REAL NOT NULL DEFAULT 0.0,
    cached        INTEGER NOT NULL DEFAULT 0,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 3,
    submitted_at  REAL NOT NULL,
    client        TEXT,
    lease_owner   TEXT,
    lease_expires REAL,
    started_at    REAL,
    finished_at   REAL,
    error         TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);
CREATE TABLE IF NOT EXISTS sweeps (
    id            TEXT PRIMARY KEY,
    title         TEXT,
    definition    TEXT NOT NULL,
    submitted_at  REAL NOT NULL,
    client        TEXT
);
CREATE TABLE IF NOT EXISTS sweep_jobs (
    sweep_id  TEXT NOT NULL,
    position  INTEGER NOT NULL,
    key       TEXT NOT NULL,
    PRIMARY KEY (sweep_id, position)
);

-- A queue frozen mid-campaign: one queued cell, one finished one, and
-- a sweep spanning both.
INSERT INTO jobs (key, spec, noise, label, status, submitted_at)
VALUES ('oldqueued', '{"k": "oldqueued"}', NULL, 'old queued cell',
        'queued', 1700000000.0);
INSERT INTO jobs (key, spec, noise, label, status, attempts,
                  submitted_at, finished_at)
VALUES ('olddone', '{"k": "olddone"}', NULL, 'old done cell',
        'done', 1, 1700000000.0, 1700000100.0);
INSERT INTO sweeps (id, title, definition, submitted_at)
VALUES ('sweep-1', 'old sweep', '{}', 1700000000.0);
INSERT INTO sweep_jobs (sweep_id, position, key) VALUES ('sweep-1', 0, 'oldqueued');
INSERT INTO sweep_jobs (sweep_id, position, key) VALUES ('sweep-1', 1, 'olddone');
