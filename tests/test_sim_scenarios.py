"""Machine-level scenario tests: placement, absorption, SMT spread.

These drive the full machine (scheduler + placement + runtime team)
through the situations the paper's mechanisms hinge on.
"""

import pytest

from repro.mitigation.strategies import get_strategy
from repro.runtimes import get_runtime
from repro.runtimes.base import Region
from repro.sim.platform import get_platform
from repro.sim.task import SchedPolicy, Task, TaskKind

from conftest import make_machine, silent_env


def launch_team(machine, strategy="Rm", model="omp", regions=None, n_regions=1, work=4.0):
    """Spawn a runtime team via a mitigation strategy placement."""
    platform = machine.platform
    placement = get_strategy(strategy).placement(platform)
    rt = get_runtime(model)
    if regions is None:
        regions = [Region(f"r{i}", total_work=work) for i in range(n_regions)]
    rt.launch(machine, iter(regions), placement)
    return rt, placement


class TestTeamPlacement:
    def test_team_spreads_one_per_cpu(self):
        m = make_machine()
        rt, placement = launch_team(m, "Rm")
        cpus = {t.cpu for t in rt.team}
        assert len(cpus) == len(rt.team)

    def test_smt_platform_spreads_to_primary_cores_first(self):
        plat = get_platform("amd-9950x3d").with_noise(silent_env())
        m = make_machine(plat)
        placement = get_strategy("Rm").placement(plat, use_smt=False)
        rt = get_runtime("omp")
        rt.launch(m, iter([]), placement)
        # 16 threads on a 32-logical machine land on 16 distinct cores
        cores = {m.topology.physical_core(t.cpu) for t in rt.team}
        assert len(cores) == 16

    def test_housekeeping_cpus_stay_clear(self):
        m = make_machine()
        rt, placement = launch_team(m, "RmHK2")
        hk = get_strategy("RmHK2").housekeeping_cpus(m.platform)
        assert not ({t.cpu for t in rt.team} & set(hk))


class TestNoiseAbsorption:
    def test_thread_noise_lands_on_housekeeping_core(self):
        m = make_machine(rt_throttle=False)
        rt, placement = launch_team(m, "RmHK2", work=8.0)
        hk = set(get_strategy("RmHK2").housekeeping_cpus(m.platform))
        burst = Task("burst", kind=TaskKind.THREAD_NOISE, work=0.1)
        landed = {}

        def fire():
            landed["cpu"] = m.scheduler.submit(burst, hint=0)

        m.engine.schedule(0.2, fire)
        m.engine.run(until=0.3)
        assert landed["cpu"] in hk

    def test_thread_noise_timeshares_when_no_housekeeping(self):
        m = make_machine(rt_throttle=False)
        rt, placement = launch_team(m, "Rm", work=8.0)
        burst = Task("burst", kind=TaskKind.THREAD_NOISE, work=0.1)
        landed = {}

        def fire():
            landed["cpu"] = m.scheduler.submit(burst, hint=3)

        m.engine.schedule(0.2, fire)
        m.engine.run(until=0.3)
        assert landed["cpu"] in {t.cpu for t in rt.team}

    def test_fifo_noise_sticks_to_home_despite_housekeeping(self):
        # RT wake placement: irq-class noise hits its home CPU even
        # when housekeeping cores idle nearby (§ RT semantics).
        m = make_machine(rt_throttle=False)
        rt, placement = launch_team(m, "RmHK2", work=8.0)
        burst = Task(
            "irq", policy=SchedPolicy.FIFO, rt_priority=90, kind=TaskKind.IRQ_NOISE, work=0.05
        )
        landed = {}

        def fire():
            landed["cpu"] = m.scheduler.submit(burst, hint=0)

        m.engine.schedule(0.2, fire)
        m.engine.run(until=0.3)
        assert landed["cpu"] == 0


class TestRegionNoiseInteraction:
    def _region_time(self, model, schedule, noise_dur, pinned_strategy="TP"):
        m = make_machine(rt_throttle=False)
        region = Region(
            "r",
            total_work=4.0,
            schedule=schedule,
            chunk_work=0.02 if schedule != "static" else 0.0,
            sycl_efficiency=1.0,
        )
        rt, placement = launch_team(m, pinned_strategy, model=model, regions=[region])
        if noise_dur > 0:
            def fire():
                m.scheduler.submit(
                    Task(
                        "irq",
                        policy=SchedPolicy.FIFO,
                        rt_priority=90,
                        kind=TaskKind.IRQ_NOISE,
                        work=noise_dur,
                        affinity=frozenset({placement.cpus[-1]}),
                    ),
                    cpu=placement.cpus[-1],
                )
            m.engine.schedule(0.1, fire)
        m.engine.run()
        return m.engine.now

    def test_omp_dynamic_absorbs_better_than_static(self):
        static_hit = self._region_time("omp", "static", 0.2) - self._region_time("omp", "static", 0.0)
        dynamic_hit = self._region_time("omp", "dynamic", 0.2) - self._region_time("omp", "dynamic", 0.0)
        assert dynamic_hit < static_hit * 0.7

    def test_pinned_sycl_pays_in_flight_chunk_tail(self):
        quiet = self._region_time("sycl", "static", 0.0)
        noisy = self._region_time("sycl", "static", 0.2)
        hit = noisy - quiet
        # bounded below by the pool dilution, above by the full block
        assert 0.0 < hit < 0.2

    def test_serial_section_fully_exposed(self):
        m = make_machine(rt_throttle=False)
        region = Region("s", total_work=1.0, serial=True)
        rt, placement = launch_team(m, "TP", regions=[region])

        def fire():
            m.scheduler.submit(
                Task(
                    "irq",
                    policy=SchedPolicy.FIFO,
                    rt_priority=90,
                    kind=TaskKind.IRQ_NOISE,
                    work=0.3,
                    affinity=frozenset({0}),
                ),
                cpu=0,
            )

        m.engine.schedule(0.1, fire)
        m.engine.run()
        # master pinned on cpu 0: the serial section waits out the noise
        assert m.engine.now == pytest.approx(1.3, rel=0.01)
