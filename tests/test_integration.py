"""Cross-module integration tests: the paper's qualitative claims.

Each test exercises the full stack (machine + runtime + workload +
pipeline) and asserts a *shape* the paper reports, at small repetition
counts.  Absolute numbers are covered by the benchmark harness.
"""

import pytest

from repro.core.pipeline import NoiseInjectionPipeline
from repro.harness.experiment import ExperimentSpec, run_experiment


def spec(**kw):
    defaults = dict(platform="intel-9700kf", workload="nbody", model="omp", strategy="Rm", seed=2025)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


class TestRawPerformance:
    """OpenMP consistently achieves higher raw performance (abstract)."""

    @pytest.mark.parametrize("workload", ["nbody", "babelstream", "minife"])
    @pytest.mark.parametrize("platform", ["intel-9700kf", "amd-9950x3d"])
    def test_omp_faster_than_sycl(self, workload, platform):
        s = spec(workload=workload, platform=platform, reps=3, anomaly_prob=0.0)
        omp = run_experiment(s)
        sycl = run_experiment(s.with_(model="sycl"))
        assert omp.mean < sycl.mean

    def test_sycl_minife_roughly_twice_omp(self):
        s = spec(workload="minife", reps=3, anomaly_prob=0.0)
        omp = run_experiment(s)
        sycl = run_experiment(s.with_(model="sycl"))
        assert 1.5 < sycl.mean / omp.mean < 2.6


class TestHousekeepingCost:
    """HK costs throughput for compute-bound work but not for
    bandwidth-bound work (§5.1 and §6 rec. 2/3)."""

    def test_nbody_pays_for_housekeeping(self):
        base = run_experiment(spec(reps=3, anomaly_prob=0.0))
        hk2 = run_experiment(spec(strategy="RmHK2", reps=3, anomaly_prob=0.0))
        assert hk2.mean > base.mean * 1.2

    def test_babelstream_housekeeping_nearly_free(self):
        base = run_experiment(spec(workload="babelstream", reps=3, anomaly_prob=0.0))
        hk2 = run_experiment(
            spec(workload="babelstream", strategy="RmHK2", reps=3, anomaly_prob=0.0)
        )
        assert hk2.mean < base.mean * 1.05


class TestVariability:
    """Anomalies create the worst cases; housekeeping absorbs them."""

    def test_anomalies_create_outliers(self):
        quiet = run_experiment(spec(reps=6, anomaly_prob=0.0))
        noisy = run_experiment(spec(reps=6, anomaly_prob=1.0))
        assert noisy.summary.maximum > quiet.summary.maximum * 1.05

    def test_housekeeping_reduces_anomaly_variability(self):
        rm = run_experiment(spec(reps=8, anomaly_prob=0.5, seed=31))
        hk = run_experiment(spec(strategy="RmHK2", reps=8, anomaly_prob=0.5, seed=31))
        assert hk.summary.cov < rm.summary.cov


class TestInjectionShapes:
    """Tables 3–6 shapes on the Intel platform at small scale."""

    @pytest.fixture(scope="class")
    def pipe(self):
        p = NoiseInjectionPipeline(
            spec(anomaly_prob=0.25, seed=42), collect_reps=20, inject_reps=6
        )
        p.build_config()
        return p

    def _delta(self, pipe, **kw):
        s = spec(reps=6, anomaly_prob=0.0, seed=77, **kw)
        base = run_experiment(s)
        inj = pipe.inject(s.with_(anomaly_prob=None))
        return inj.mean / base.mean - 1.0

    def test_housekeeping_mitigates_injection(self, pipe):
        assert self._delta(pipe, strategy="RmHK2") < self._delta(pipe, strategy="Rm")

    def test_sycl_more_resilient_than_omp(self, pipe):
        assert self._delta(pipe, model="sycl") < self._delta(pipe, model="omp")

    def test_tp_comparable_to_rm(self, pipe):
        # §5.2: no mitigation benefit from pinning alone on desktops.
        rm = self._delta(pipe, strategy="Rm")
        tp = self._delta(pipe, strategy="TP")
        assert tp >= rm - 0.05

    def test_accuracy_within_paper_band(self, pipe):
        injected = pipe.inject(spec(reps=8, anomaly_prob=None))
        from repro.core.accuracy import replication_accuracy

        acc = replication_accuracy(injected.mean, pipe.collection.worst_exec_time)
        assert acc < 0.30  # the paper's own worst config hit 25.74%


class TestReservedCoreMotivation:
    """§3: reserved OS cores kill variability on A64FX."""

    def test_reserved_system_less_variable(self):
        s = spec(
            platform="a64fx",
            workload="schedbench",
            reps=10,
            seed=5,
            anomaly_prob=0.6,
            workload_params={"schedule": "static", "chunk": 1},
        )
        unreserved = run_experiment(s)
        reserved = run_experiment(s.with_(platform="a64fx-reserved"))
        assert reserved.sd < unreserved.sd


class TestDeterminismEndToEnd:
    def test_full_pipeline_reproducible(self):
        results = []
        for _ in range(2):
            pipe = NoiseInjectionPipeline(
                spec(seed=99, anomaly_prob=0.3), collect_reps=8, inject_reps=3
            )
            results.append(pipe.run())
        assert results[0].injected_mean == results[1].injected_mean
        assert results[0].config.to_json() == results[1].config.to_json()
