"""Adaptive-rep early stopping: policy semantics, determinism, caching.

The adaptive contract (see ``repro.harness.adaptive``): same spec +
seed + policy → same rep count and bit-identical per-rep times at any
worker count or chunk size; the first ``n`` adaptive reps equal the
first ``n`` fixed reps; adaptive results cache under a distinct key.
``tests/fixtures/adaptive_reps.json`` pins the reference behaviour.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.harness.adaptive import (
    ADAPTIVE_FIXTURE_VERSION,
    AdaptivePolicy,
    ci_rng,
)
from repro.harness.cache import ResultCache
from repro.harness.executor import ParallelExecutor, SerialExecutor
from repro.harness.experiment import ExperimentSpec, run_experiment
from tests.adaptive_cases import (
    ADAPTIVE_FIXTURE_PATH,
    FIXTURE_BUDGET,
    FIXTURE_POLICY,
    build_adaptive_cases,
    run_adaptive_case,
)

REPO = Path(__file__).resolve().parent.parent


def spec(**kw):
    defaults = dict(platform="intel-9700kf", workload="nbody", model="omp", reps=24, seed=42)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


def policy(**kw):
    defaults = dict(target_rel_hw=0.05, min_reps=4, batch=4, n_boot=200)
    defaults.update(kw)
    return AdaptivePolicy(**defaults)


@pytest.fixture(scope="module")
def fixtures():
    data = json.loads((REPO / ADAPTIVE_FIXTURE_PATH).read_text())
    assert data["version"] == ADAPTIVE_FIXTURE_VERSION
    assert data["policy"] == FIXTURE_POLICY.to_dict()
    assert data["budget"] == FIXTURE_BUDGET
    return {c["name"]: c for c in data["cases"]}


# ----------------------------------------------------------------------
# policy semantics
# ----------------------------------------------------------------------
class TestPolicy:
    @pytest.mark.parametrize("kw", [
        dict(target_rel_hw=0.0), dict(target_rel_hw=-0.1),
        dict(confidence=0.0), dict(confidence=1.0),
        dict(min_reps=1), dict(max_reps=-1), dict(batch=0), dict(n_boot=10),
    ])
    def test_invalid_params_rejected(self, kw):
        with pytest.raises(ValueError):
            policy(**kw)

    def test_cap_resolution(self):
        assert policy().resolve_cap(40) == 40          # 0 → spec budget
        assert policy(max_reps=16).resolve_cap(40) == 16
        assert policy(max_reps=100).resolve_cap(40) == 100  # explicit wins

    def test_batch_edges_schedule(self):
        p = policy(min_reps=8, batch=8)
        assert p.batch_edges(40) == [8, 16, 24, 32, 40]
        assert p.batch_edges(20) == [8, 16, 20]
        assert p.batch_edges(5) == [5]
        assert p.batch_edges(0) == []

    def test_should_stop_needs_two_samples(self):
        stop, hw = policy().should_stop(np.array([1.0]), seed=1, n=4)
        assert not stop and np.isnan(hw)

    def test_should_stop_deterministic(self):
        rng = np.random.default_rng(7)
        times = 1.0 + 0.01 * rng.standard_normal(16)
        a = policy().should_stop(times, seed=3, n=16)
        b = policy().should_stop(times, seed=3, n=16)
        assert a == b

    def test_ci_rng_disjoint_from_rep_streams(self):
        """The decision stream must not collide with per-rep streams
        (``spawn_key=(i,)``) — tapping it cannot perturb rep results."""
        from repro.harness.executor import rep_seed

        decision = ci_rng(42, 8).random(4)
        rep = np.random.default_rng(rep_seed(42, 8)).random(4)
        assert not np.array_equal(decision, rep)

    def test_dict_round_trip_and_coerce(self):
        p = policy(max_reps=64)
        assert AdaptivePolicy.from_dict(p.to_dict()) == p
        assert AdaptivePolicy.coerce(p) is p
        assert AdaptivePolicy.coerce(p.to_dict()) == p
        assert AdaptivePolicy.coerce(None) is None
        with pytest.raises(TypeError):
            AdaptivePolicy.coerce(0.05)

    def test_spec_coerces_policy_dict(self):
        s = spec(adaptive=policy().to_dict())
        assert s.adaptive == policy()


# ----------------------------------------------------------------------
# the adaptive rep loop
# ----------------------------------------------------------------------
class TestLoop:
    def test_stops_early_and_reports(self):
        rs = run_experiment(spec(adaptive=policy()), executor=SerialExecutor())
        info = rs.adaptive
        assert info is not None
        assert info["reps_run"] == len(rs.times) == len(rs.anomalies)
        assert info["reps_run"] < 24 and info["stopped_early"]
        assert info["rel_halfwidth"] <= policy().target_rel_hw
        assert info["policy"] == policy().to_dict()

    def test_fixed_mode_unreported(self):
        rs = run_experiment(spec(), executor=SerialExecutor())
        assert rs.adaptive is None

    def test_prefix_matches_fixed_run(self):
        """The first n adaptive reps are the first n fixed reps."""
        rs = run_experiment(spec(adaptive=policy()), executor=SerialExecutor())
        fixed = run_experiment(spec(), executor=SerialExecutor())
        n = rs.adaptive["reps_run"]
        np.testing.assert_array_equal(rs.times, fixed.times[:n])
        assert rs.anomalies == fixed.anomalies[:n]

    def test_unreachable_target_runs_to_cap(self):
        p = policy(target_rel_hw=1e-9)
        rs = run_experiment(spec(adaptive=p), executor=SerialExecutor())
        assert rs.adaptive["reps_run"] == 24
        assert not rs.adaptive["stopped_early"]

    def test_explicit_max_reps_overrides_budget(self):
        p = policy(target_rel_hw=1e-9, max_reps=6)
        rs = run_experiment(spec(adaptive=p), executor=SerialExecutor())
        assert rs.adaptive["reps_run"] == 6 and rs.adaptive["cap"] == 6

    def test_worker_and_chunk_invariant(self):
        s = spec(workload="schedbench", seed=9, workload_params={"repeats": 3},
                 adaptive=policy())
        ref = run_experiment(s, executor=SerialExecutor())
        for jobs, chunk in ((2, None), (2, 1), (3, 5)):
            ex = ParallelExecutor(jobs, chunk_size=chunk)
            try:
                rs = run_experiment(s, executor=ex)
            finally:
                ex.close()
            assert rs.adaptive["reps_run"] == ref.adaptive["reps_run"]
            np.testing.assert_array_equal(ref.times, rs.times)
            assert ref.anomalies == rs.anomalies


# ----------------------------------------------------------------------
# fixture replay (the pinned reference behaviour)
# ----------------------------------------------------------------------
class TestFixtures:
    def test_serial_replay_exact(self, fixtures):
        for case in build_adaptive_cases():
            sig = run_adaptive_case(case)
            assert sig == fixtures[case["name"]], case["name"]

    def test_parallel_replay_exact(self, fixtures):
        ex = ParallelExecutor(2)
        try:
            for case in build_adaptive_cases():
                sig = run_adaptive_case(case, executor=ex)
                assert sig == fixtures[case["name"]], case["name"]
        finally:
            ex.close()

    def test_fixture_mix_covers_all_outcomes(self, fixtures):
        """The suite must keep exercising every stopping regime."""
        runs = [c["reps_run"] for c in fixtures.values()]
        assert FIXTURE_POLICY.min_reps in runs          # stops at min
        assert FIXTURE_BUDGET in runs                   # exhausts budget
        assert any(FIXTURE_POLICY.min_reps < r < FIXTURE_BUDGET for r in runs)


# ----------------------------------------------------------------------
# caching: adaptive results key separately from fixed-rep ones
# ----------------------------------------------------------------------
class TestCaching:
    def test_distinct_keys(self):
        key = ResultCache._key
        fixed = key(spec(), None, 24)
        assert key(spec(adaptive=policy()), None, 24) != fixed
        assert key(spec(adaptive=policy()), None, 24) != key(
            spec(adaptive=policy(batch=5)), None, 24
        )

    def test_stop_rule_version_shapes_key(self, monkeypatch):
        """Bumping ADAPTIVE_FIXTURE_VERSION invalidates adaptive entries
        (the stored sample depends on the stop rule) without touching
        fixed-rep ones."""
        import repro.harness.cache as cache_mod

        s = spec(adaptive=policy())
        before = ResultCache._key(s, None, 24)
        fixed_before = ResultCache._key(spec(), None, 24)
        monkeypatch.setattr(cache_mod, "_ADAPTIVE_KEY_VERSION", 99)
        assert ResultCache._key(s, None, 24) != before
        assert ResultCache._key(spec(), None, 24) == fixed_before

    def test_round_trip_preserves_adaptive_metadata(self, tmp_path):
        cache = ResultCache(tmp_path)
        s = spec(adaptive=policy())
        first = cache.get_or_run(s, executor=SerialExecutor())
        again = cache.get_or_run(s, executor=SerialExecutor())
        assert cache.stats()["hits"] >= 1
        np.testing.assert_array_equal(first.times, again.times)
        assert again.adaptive == first.adaptive
        assert again.adaptive["reps_run"] == len(again.times)

    def test_cache_level_default_policy(self, tmp_path):
        """A cache-wide policy applies to specs without one (campaign
        threading) but never overrides a per-spec policy."""
        cache = ResultCache(tmp_path, adaptive=policy())
        rs = cache.get_or_run(spec(), executor=SerialExecutor())
        assert rs.adaptive is not None
        tight = policy(target_rel_hw=1e-9)
        rs2 = cache.get_or_run(spec(adaptive=tight), executor=SerialExecutor())
        assert rs2.adaptive["policy"] == tight.to_dict()

    def test_fixed_keys_independent_of_cache_default(self, tmp_path):
        """The cache-wide policy changes what runs, not how fixed keys
        hash — keys are a pure function of the (possibly upgraded) spec."""
        plain = ResultCache(tmp_path)
        defaulted = ResultCache(tmp_path, adaptive=policy())
        s = spec()
        assert plain._key(s, None, 24) == defaulted._key(s, None, 24)


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_baseline_flag(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["baseline", "--reps", "12", "--seed", "5",
                     "--adaptive-ci", "0.5"]) == 0
        assert "mean=" in capsys.readouterr().out

    def test_bad_values_rejected(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["baseline", "--adaptive-ci", "-0.1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["baseline", "--chunk-size", "0"])

    def test_flag_reaches_spec(self):
        from repro.cli import _spec_from, build_parser

        args = build_parser().parse_args(["baseline", "--adaptive-ci", "0.02"])
        s = _spec_from(args)
        assert s.adaptive == AdaptivePolicy(target_rel_hw=0.02)
        assert _spec_from(build_parser().parse_args(["baseline"])).adaptive is None
