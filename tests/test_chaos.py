"""Deterministic chaos-harness tests: injected faults must exercise
every recovery path while the recovered results stay bit-identical to
undisturbed runs.

The parallel-backend cases use fresh (non-shared) ``ParallelExecutor``
instances so a chaos-broken pool never leaks into other tests.
"""

import json

import numpy as np
import pytest

from repro.harness.cache import ResultCache
from repro.harness.chaos import (
    CHAOS_PROFILES,
    ChaosError,
    ChaosSpec,
    get_chaos,
    in_worker,
    mark_worker,
    parse_chaos,
)
from repro.harness.executor import ParallelExecutor, SerialExecutor
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.faults import FaultPolicy


def spec(**kw):
    defaults = dict(
        platform="intel-9700kf", workload="schedbench", reps=6, seed=42,
        workload_params={"repeats": 2},
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


@pytest.fixture(autouse=True)
def _isolated_chaos(monkeypatch):
    """Each test drives REPRO_CHAOS itself; an externally exported
    directive (the CI chaos-smoke job) must not leak into references."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)


# ----------------------------------------------------------------------
# directive parsing and determinism
# ----------------------------------------------------------------------
class TestParsing:
    @pytest.mark.parametrize("profile", CHAOS_PROFILES)
    def test_profiles_parse(self, profile):
        cs = parse_chaos(f"{profile}:7")
        assert cs.profile == profile and cs.seed == 7 and not cs.persist

    def test_rate_and_persist(self):
        cs = parse_chaos("crash!:3:0.75")
        assert cs.persist and cs.rate == 0.75 and cs.profile == "crash"

    @pytest.mark.parametrize(
        "text", ["", "raise", "bogus:1", "raise:x", "raise:1:2.0", "raise:1:0.5:extra"]
    )
    def test_invalid_directives_rejected(self, text):
        with pytest.raises(ValueError):
            parse_chaos(text)

    def test_get_chaos_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert get_chaos() is None
        monkeypatch.setenv("REPRO_CHAOS", "raise:9:1.0")
        assert get_chaos() == ChaosSpec(profile="raise", seed=9, rate=1.0)
        monkeypatch.delenv("REPRO_CHAOS")
        assert get_chaos() is None


class TestDeterminism:
    def test_fault_decision_pure_function(self):
        cs = ChaosSpec(profile="all", seed=5, rate=0.5)
        modes = [cs._mode(42, i) for i in range(50)]
        assert modes == [cs._mode(42, i) for i in range(50)]
        fired = [m for m in modes if m is not None]
        assert 0 < len(fired) < 50  # rate actually selects a subset
        assert set(fired) <= {"raise", "timeout", "crash"}

    def test_different_seeds_differ(self):
        a = [ChaosSpec("raise", 1, 0.5)._mode(42, i) for i in range(64)]
        b = [ChaosSpec("raise", 2, 0.5)._mode(42, i) for i in range(64)]
        assert a != b

    def test_fires_only_on_first_attempt_unless_persist(self):
        cs = ChaosSpec(profile="raise", seed=1, rate=1.0)
        with pytest.raises(ChaosError):
            cs.rep_fault(42, 0, attempt=0)
        cs.rep_fault(42, 0, attempt=1)  # recovery attempt: no fault
        persist = ChaosSpec(profile="raise", seed=1, rate=1.0, persist=True)
        with pytest.raises(ChaosError):
            persist.rep_fault(42, 0, attempt=1)

    def test_crash_downgrades_outside_workers(self):
        assert not in_worker()
        cs = ChaosSpec(profile="crash", seed=1, rate=1.0)
        with pytest.raises(ChaosError, match="serial downgrade"):
            cs.rep_fault(42, 0, attempt=0)

    def test_mark_worker_flag(self):
        mark_worker(True)
        try:
            assert in_worker()
        finally:
            mark_worker(False)
        assert not in_worker()


# ----------------------------------------------------------------------
# pool-breakage recovery (the BrokenProcessPool path)
# ----------------------------------------------------------------------
class TestPoolRecovery:
    def test_worker_crash_recovered_bit_identical(self, monkeypatch):
        """Chaos kills every worker on first dispatch; the pool is
        rebuilt, chunks re-dispatch at attempt > 0 (no further faults),
        and the final results match an undisturbed run exactly."""
        clean = run_experiment(spec(), executor=SerialExecutor())
        monkeypatch.setenv("REPRO_CHAOS", "crash:17:1.0")
        ex = ParallelExecutor(2)
        try:
            rs = run_experiment(spec(), executor=ex)
        finally:
            ex.close()
        np.testing.assert_array_equal(clean.times, rs.times)
        assert clean.anomalies == rs.anomalies
        stats = ex.stats()
        assert stats["pool_rebuilds"] >= 1
        assert stats["chunk_redispatches"] >= 1
        assert not stats["degraded"]

    def test_partial_crash_rate_recovers(self, monkeypatch):
        clean = run_experiment(spec(reps=8, seed=3), executor=SerialExecutor())
        monkeypatch.setenv("REPRO_CHAOS", "crash:23:0.3")
        ex = ParallelExecutor(2)
        try:
            rs = run_experiment(spec(reps=8, seed=3), executor=ex)
        finally:
            ex.close()
        np.testing.assert_array_equal(clean.times, rs.times)

    def test_persistent_crashes_degrade_to_serial(self, monkeypatch):
        """With faults firing on every dispatch the pool keeps breaking;
        after ``max_pool_breaks`` the executor degrades to in-process
        execution, where crash downgrades to a containable exception."""
        monkeypatch.setenv("REPRO_CHAOS", "crash!:29:1.0")
        ex = ParallelExecutor(2)
        try:
            rs = run_experiment(
                spec(),
                executor=ex,
                policy=FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0),
            )
        finally:
            ex.close()
        stats = ex.stats()
        assert stats["degraded"]
        assert stats["pool_rebuilds"] >= ex.max_pool_breaks
        # Serial fallback contains the (downgraded) faults per policy.
        assert rs.failure_count() == len(rs.times)
        assert np.isnan(rs.times).all()

    def test_degraded_executor_still_correct_after_chaos_lifts(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash!:29:1.0")
        ex = ParallelExecutor(2)
        try:
            run_experiment(
                spec(),
                executor=ex,
                policy=FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0),
            )
            assert ex.stats()["degraded"]
            monkeypatch.delenv("REPRO_CHAOS")
            clean = run_experiment(spec(), executor=SerialExecutor())
            rs = run_experiment(spec(), executor=ex)  # serial in-process now
            np.testing.assert_array_equal(clean.times, rs.times)
        finally:
            ex.close()


# ----------------------------------------------------------------------
# cache corruption (torn-write salvage)
# ----------------------------------------------------------------------
class TestCorruption:
    def test_torn_entry_salvaged_and_rerun(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "corrupt:31:1.0")
        cache = ResultCache(tmp_path)
        first = cache.get_or_run(spec(reps=3))
        # The freshly written entry was torn by chaos: next lookup
        # salvages (evict + re-run) and the rewrite stands (corruption
        # fires once per path).
        second = cache.get_or_run(spec(reps=3))
        assert cache.stats()["corrupt"] == 1
        np.testing.assert_array_equal(first.times, second.times)
        third = cache.get_or_run(spec(reps=3))
        assert cache.stats()["hits"] == 1
        np.testing.assert_array_equal(first.times, third.times)

    def test_corrupt_profile_never_touches_reps(self, monkeypatch):
        clean = run_experiment(spec(reps=3), executor=SerialExecutor())
        monkeypatch.setenv("REPRO_CHAOS", "corrupt:31:1.0")
        rs = run_experiment(spec(reps=3), executor=SerialExecutor())
        np.testing.assert_array_equal(clean.times, rs.times)


# ----------------------------------------------------------------------
# end-to-end: campaign under chaos == undisturbed campaign
# ----------------------------------------------------------------------
class TestChaosEquivalence:
    def test_campaign_under_chaos_matches_undisturbed(
        self, tmp_path, monkeypatch
    ):
        from repro.harness import campaigns

        monkeypatch.setenv("REPRO_BASELINE_REPS", "3")
        reference = campaigns.table1(
            campaigns.default_settings(cache=ResultCache(tmp_path / "clean"))
        ).render()
        monkeypatch.setenv("REPRO_CHAOS", "raise:37:0.4")
        chaotic = campaigns.table1(
            campaigns.default_settings(
                cache=ResultCache(tmp_path / "chaos"),
                fault_policy=FaultPolicy(
                    on_failure="retry", max_retries=2, backoff_base=0.0
                ),
            )
        ).render()
        assert chaotic == reference

    def test_golden_cases_survive_chaos_bitwise(self, monkeypatch):
        """A slice of the golden-equivalence matrix replayed under
        injected faults + retry: signatures must match the undisturbed
        ones exactly (same float hex, same trace hashes)."""
        from tests.golden_cases import build_cases, run_case

        cases = [c for c in build_cases()
                 if c["name"] in ("intel-schedbench-static", "intel-replay",
                                  "amd-nbody-smt")]
        assert len(cases) == 3
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        reference = [run_case(c) for c in cases]
        monkeypatch.setenv("REPRO_CHAOS", "raise:41:1.0")
        policy = FaultPolicy(on_failure="retry", max_retries=1, backoff_base=0.0)
        chaotic = [run_case(c, policy=policy) for c in cases]
        assert chaotic == reference
