"""Unit tests for the noise injector (paper §4.3, Listing 1)."""

import pytest

from repro.core.config import ConfigEvent, NoiseConfig
from repro.core.events import EventType
from repro.core.injector import NoiseInjector
from repro.sim.task import Task

from conftest import make_machine


def fifo_event(start, duration, cpu_source="irq"):
    return ConfigEvent(
        start=start,
        duration=duration,
        policy="SCHED_FIFO",
        rt_priority=90,
        weight=1.0,
        etype=EventType.IRQ,
        source=cpu_source,
    )


def thread_event(start, duration, weight=1.0):
    return ConfigEvent(
        start=start,
        duration=duration,
        policy="SCHED_OTHER",
        rt_priority=0,
        weight=weight,
        etype=EventType.THREAD,
        source="snapd",
    )


def run_with_injection(
    config,
    workload_duration=1.0,
    rt_throttle=False,
    seed=0,
    tracing=False,
    occupy_all=False,
):
    """Quiet machine: pinned 1.0s worker on cpu 0 + injection.

    With ``occupy_all`` the remaining CPUs hold pinned spinners, so
    OTHER-class noise cannot escape to an idle CPU (the no-housekeeping
    scenario).
    """
    m = make_machine(seed=seed, rt_throttle=rt_throttle, tracing=tracing)
    done = {}

    def start(mm):
        w = Task("w", work=workload_duration, affinity=frozenset({0}), pinned=True)
        w.on_complete = lambda t: (done.setdefault("w", mm.engine.now), mm.workload_done())
        mm.scheduler.submit(w, cpu=0)
        mm.note_workload_cpu(0)
        if occupy_all:
            for c in range(1, mm.topology.n_logical):
                mm.scheduler.submit(
                    Task(f"spin{c}", affinity=frozenset({c}), pinned=True), cpu=c
                )
        injector = NoiseInjector(config)
        injector.launch(mm)
        done["injector"] = injector

    result = m.run(start, expected_duration=workload_duration)
    return m, result, done


class TestInjection:
    def test_fifo_event_delays_pinned_workload(self):
        cfg = NoiseConfig({0: [fifo_event(0.2, 0.1)]})
        m, result, done = run_with_injection(cfg)
        assert result.exec_time == pytest.approx(1.1, rel=1e-3)

    def test_event_timing_respected(self):
        # Event at t=0.2 on an idle-home CPU runs exactly then.
        cfg = NoiseConfig({3: [fifo_event(0.2, 0.05)]})
        m, result, done = run_with_injection(cfg, tracing=True)
        trace = result.trace
        mask = trace.events_of_source("inject:irq")
        assert mask.sum() == 1
        assert trace.starts[mask][0] == pytest.approx(0.2, abs=1e-4)

    def test_sequential_events_on_one_cpu(self):
        cfg = NoiseConfig({0: [fifo_event(0.1, 0.05), fifo_event(0.3, 0.05)]})
        m, result, done = run_with_injection(cfg)
        assert done["injector"].injected_events == 2
        assert result.exec_time == pytest.approx(1.1, rel=1e-3)

    def test_thread_noise_timeshares(self):
        cfg = NoiseConfig({0: [thread_event(0.0, 0.5)]})
        m, result, done = run_with_injection(cfg, occupy_all=True)
        # noise and workload share cpu 0; workload needs 1.0 cpu-s
        assert result.exec_time == pytest.approx(1.5, rel=0.01)

    def test_thread_noise_absorbed_by_idle_cpu(self):
        # With free CPUs (housekeeping), OTHER noise wakes elsewhere.
        cfg = NoiseConfig({0: [thread_event(0.0, 0.5)]})
        m, result, done = run_with_injection(cfg, occupy_all=False)
        assert result.exec_time == pytest.approx(1.0, rel=1e-3)

    def test_boosted_weight_noise_front_loads_impact(self):
        # The improved injector raises thread-noise weight so the noise
        # claims its CPU time assertively; while both tasks contend the
        # boosted variant slows the workload more (weight 3 leaves the
        # worker a 1/4 share instead of 1/2).
        plain = run_with_injection(
            NoiseConfig({0: [thread_event(0.0, 0.5, weight=1.0)]}),
            workload_duration=0.25,
            occupy_all=True,
        )[1]
        boosted = run_with_injection(
            NoiseConfig({0: [thread_event(0.0, 0.5, weight=3.0)]}),
            workload_duration=0.25,
            occupy_all=True,
        )[1]
        # plain: shares 1/2 each, worker (0.25 cpu-s) done at 0.5;
        # boosted: worker at 1/4 until the noise drains at 2/3, then
        # full speed -> 0.75.
        assert plain.exec_time == pytest.approx(0.5, rel=0.01)
        assert boosted.exec_time == pytest.approx(0.75, rel=0.01)

    def test_injected_noise_lands_in_trace(self):
        # The tracer cannot tell injected noise apart (paper's
        # validation loop depends on this).
        cfg = NoiseConfig({0: [fifo_event(0.2, 0.1)]})
        m, result, done = run_with_injection(cfg, tracing=True)
        assert "inject:irq" in result.trace.sources

    def test_events_after_workload_end_abandoned(self):
        cfg = NoiseConfig({0: [fifo_event(5.0, 0.1)]})
        m, result, done = run_with_injection(cfg)
        assert result.exec_time == pytest.approx(1.0, rel=1e-3)
        assert done["injector"].injected_events == 0

    def test_injector_processes_have_no_affinity(self):
        cfg = NoiseConfig({0: [thread_event(0.0, 0.2)]})
        m = make_machine(tracing=True)
        captured = {}

        def start(mm):
            w = Task("w", work=0.5, affinity=frozenset({0}), pinned=True)
            w.on_complete = lambda t: mm.workload_done()
            mm.scheduler.submit(w, cpu=0)
            NoiseInjector(cfg).launch(mm)

        result = m.run(start, expected_duration=0.5)
        # home cpu 0 is busy: OTHER noise wakes onto an idle cpu instead
        trace = result.trace
        mask = trace.events_of_source("inject:snapd")
        assert mask.sum() == 1
        assert int(trace.cpus[mask][0]) != 0

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            NoiseInjector(NoiseConfig({}))

    def test_single_use(self):
        cfg = NoiseConfig({0: [fifo_event(0.1, 0.05)]})
        m, result, done = run_with_injection(cfg)
        with pytest.raises(RuntimeError):
            done["injector"].launch(m)

    def test_injected_busy_accounting(self):
        cfg = NoiseConfig({0: [fifo_event(0.1, 0.05), fifo_event(0.3, 0.07)]})
        m, result, done = run_with_injection(cfg)
        assert done["injector"].injected_busy == pytest.approx(0.12)
