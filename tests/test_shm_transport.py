"""Shared-memory result transport: equivalence and leak hygiene.

The parallel executor moves bulk per-rep outputs (exec times, attempt
counts, anomaly codes) through a ``multiprocessing.shared_memory``
block instead of pickling ``RepResult`` lists.  Two properties are
load-bearing:

* **Equivalence** — shm and pickle transports produce float-hex
  identical times and identical anomaly labels; transport is a wire
  format, never a source of divergence.
* **Hygiene** — every error path (chunk failure, worker crash and pool
  rebuild, degrade-to-serial) unlinks the segment; no run may orphan
  ``/dev/shm`` entries.
"""

import glob

import numpy as np
import pytest

from repro.harness.executor import (
    ParallelExecutor,
    SerialExecutor,
    _ShmResultBlock,
    resolve_transport,
)
from repro.harness.experiment import ExperimentSpec, run_experiment
from repro.harness.faults import FaultPolicy


def spec(**kw):
    defaults = dict(platform="intel-9700kf", workload="nbody", model="omp", reps=6, seed=42)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


def shm_segments() -> set:
    """Names of live repro shm segments (Linux tmpfs view)."""
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro_shm_*")}


@pytest.fixture(autouse=True)
def _isolated_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_SHM", raising=False)


def run_with(transport, s, **kw):
    ex = ParallelExecutor(2, transport=transport)
    try:
        return run_experiment(s, executor=ex, **kw), ex.stats()
    finally:
        ex.close()


# ----------------------------------------------------------------------
# transport resolution
# ----------------------------------------------------------------------
class TestResolve:
    @pytest.mark.parametrize("raw,expected", [
        ("0", "pickle"), ("off", "pickle"), ("pickle", "pickle"),
        ("", "auto"), ("1", "auto"), ("on", "auto"), ("auto", "auto"), ("shm", "auto"),
    ])
    def test_env_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_SHM", raw)
        assert resolve_transport() == expected

    def test_env_unset_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert resolve_transport() == "auto"

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "yes-please")
        with pytest.raises(ValueError):
            resolve_transport()

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert resolve_transport("shm") == "shm"

    def test_bad_explicit_rejected(self):
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")

    def test_env_selects_executor_transport(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "pickle")
        ex = ParallelExecutor(2)
        try:
            assert ex.transport == "pickle"
        finally:
            ex.close()


# ----------------------------------------------------------------------
# shm vs pickle equivalence (the transport is a wire format, nothing more)
# ----------------------------------------------------------------------
class TestEquivalence:
    def test_bulk_path_float_hex_identical(self):
        s = spec(reps=8)
        via_shm, shm_stats = run_with("auto", s)
        via_pickle, pk_stats = run_with("pickle", s)
        assert shm_stats["shm_chunks"] > 0, "shm transport never engaged"
        assert pk_stats["shm_chunks"] == 0 and pk_stats["pickle_chunks"] > 0
        assert [t.hex() for t in via_shm.times] == [t.hex() for t in via_pickle.times]
        assert via_shm.anomalies == via_pickle.anomalies

    def test_matches_serial_reference(self):
        s = spec(workload="babelstream", reps=6, seed=7)
        serial = run_experiment(s, executor=SerialExecutor())
        via_shm, stats = run_with("auto", s)
        assert stats["shm_chunks"] > 0
        np.testing.assert_array_equal(serial.times, via_shm.times)
        assert serial.anomalies == via_shm.anomalies

    def test_anomaly_labels_survive_code_table(self):
        """Anomaly names ride as small-int codes; a high anomaly rate
        exercises the code table (and the pickled-extras fallback for
        names outside it) without losing a single label."""
        s = spec(workload="schedbench", reps=10, seed=11, anomaly_prob=0.9)
        serial = run_experiment(s, executor=SerialExecutor())
        assert any(a is not None for a in serial.anomalies)
        via_shm, stats = run_with("auto", s)
        assert stats["shm_chunks"] > 0
        assert serial.anomalies == via_shm.anomalies
        np.testing.assert_array_equal(serial.times, via_shm.times)

    def test_on_run_rides_trace_segments(self):
        """Trace delivery (need_runs) rides shm too: scalars in the
        dispatch block, trace columns in per-chunk segments."""
        s = spec(reps=4)
        seen = []
        rs, stats = run_with("auto", s, on_run=lambda i, r: seen.append(i))
        assert seen == [0, 1, 2, 3]
        assert stats["shm_chunks"] > 0 and stats["shm_trace_chunks"] > 0
        assert stats["pickle_chunks"] == 0
        assert len(rs.times) == 4

    def test_traces_bitwise_identical_across_transports(self):
        """Rebuilt-from-shm traces equal serial and pickled ones down to
        the last bit of every column — the stable (start, cpu) re-sort
        in Trace.__init__ is order-preserving on sorted input."""
        s = spec(workload="schedbench", reps=4, seed=5, tracing=True)

        def collect(executor):
            runs = {}
            result = run_experiment(s, executor=executor, on_run=lambda i, r: runs.__setitem__(i, r))
            return result, runs

        serial, serial_runs = collect(SerialExecutor())
        ex = ParallelExecutor(2, transport="auto")
        try:
            via_shm, shm_runs = collect(ex)
            stats = ex.stats()
        finally:
            ex.close()
        assert stats["shm_trace_chunks"] > 0
        assert serial_runs.keys() == shm_runs.keys()
        for i, ref in serial_runs.items():
            got = shm_runs[i]
            assert got.exec_time.hex() == ref.exec_time.hex()
            assert got.anomaly == ref.anomaly
            assert got.migrations == ref.migrations
            assert got.preemptions == ref.preemptions
            assert got.meta == ref.meta
            if ref.trace is None:
                assert got.trace is None
                continue
            for col in ("cpus", "etypes", "source_ids", "starts", "durations"):
                np.testing.assert_array_equal(
                    getattr(got.trace, col), getattr(ref.trace, col)
                )
            assert got.trace.sources == ref.trace.sources
            assert got.trace.exec_time.hex() == ref.trace.exec_time.hex()
            assert got.trace.meta == ref.trace.meta

    def test_skip_policy_failures_cross_the_wire(self, monkeypatch):
        """Contained failures (NaN time + FailureRecord) are pickled
        extras layered over the shm block; both transports agree."""
        monkeypatch.setenv("REPRO_CHAOS", "raise!:11:0.5")
        policy = FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0)
        s = spec(reps=8, seed=3)
        via_shm, shm_stats = run_with("auto", s, policy=policy)
        via_pickle, _ = run_with("pickle", s, policy=policy)
        assert shm_stats["shm_chunks"] > 0
        assert via_shm.failure_count() == via_pickle.failure_count() > 0
        np.testing.assert_array_equal(via_shm.times, via_pickle.times)
        assert sorted(f.index for f in via_shm.failures) == sorted(
            f.index for f in via_pickle.failures
        )


# ----------------------------------------------------------------------
# segment hygiene: no orphaned /dev/shm entries, ever
# ----------------------------------------------------------------------
class TestLeaks:
    def test_clean_run_leaves_nothing(self):
        before = shm_segments()
        _, stats = run_with("auto", spec(reps=8))
        assert stats["shm_chunks"] > 0
        assert shm_segments() == before

    def test_chunk_failure_leaves_nothing(self, monkeypatch):
        before = shm_segments()
        monkeypatch.setenv("REPRO_CHAOS", "raise!:13:1.0")
        ex = ParallelExecutor(2, transport="auto")
        try:
            run_experiment(
                spec(reps=6),
                executor=ex,
                policy=FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0),
            )
        finally:
            ex.close()
        assert shm_segments() == before

    def test_pool_rebuild_leaves_nothing(self, monkeypatch):
        """Worker crashes break the pool mid-chunk; the rebuilt pool
        re-dispatches into the same block, and the parent still unlinks
        exactly once."""
        before = shm_segments()
        monkeypatch.setenv("REPRO_CHAOS", "crash:17:1.0")
        ex = ParallelExecutor(2, transport="auto")
        try:
            rs = run_experiment(spec(workload="schedbench", reps=6), executor=ex)
        finally:
            ex.close()
        assert ex.stats()["pool_rebuilds"] >= 1
        assert len(rs.times) == 6
        assert shm_segments() == before

    def test_degrade_to_serial_leaves_nothing(self, monkeypatch):
        before = shm_segments()
        monkeypatch.setenv("REPRO_CHAOS", "crash!:29:1.0")
        ex = ParallelExecutor(2, transport="auto")
        try:
            run_experiment(
                spec(workload="schedbench", reps=6),
                executor=ex,
                policy=FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0),
            )
            assert ex.stats()["degraded"]
        finally:
            ex.close()
        assert shm_segments() == before

    def test_trace_run_leaves_nothing(self):
        """need_runs dispatches create per-chunk trace segments; all of
        them are gone after the run."""
        before = shm_segments()
        _, stats = run_with(
            "auto", spec(workload="schedbench", reps=6, tracing=True), on_run=lambda i, r: None
        )
        assert stats["shm_trace_chunks"] > 0
        assert shm_segments() == before

    def test_trace_run_chunk_failure_leaves_nothing(self, monkeypatch):
        """A chunk that dies before (or while) writing its trace segment
        must not orphan it — the parent registered the name up front."""
        before = shm_segments()
        monkeypatch.setenv("REPRO_CHAOS", "raise!:13:1.0")
        ex = ParallelExecutor(2, transport="auto")
        try:
            run_experiment(
                spec(reps=6, tracing=True),
                executor=ex,
                on_run=lambda i, r: None,
                policy=FaultPolicy(on_failure="skip", max_retries=0, backoff_base=0.0),
            )
        finally:
            ex.close()
        assert shm_segments() == before

    def test_block_close_is_idempotent(self):
        block = _ShmResultBlock(range(4), codes=("thermal",))
        name = block.descriptor()["name"]
        assert name in shm_segments()
        block.close()
        assert name not in shm_segments()
        block.close()  # second close must not raise
