"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_runs_callbacks_in_time_order(self, engine):
        order = []
        engine.schedule(2.0, order.append, "b")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(3.0, order.append, "c")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_in_scheduling_order(self, engine):
        order = []
        for tag in "abc":
            engine.schedule(1.0, order.append, tag)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(5.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.5]
        assert engine.now == 5.5

    def test_schedule_after_relative(self, engine):
        seen = []
        engine.schedule(1.0, lambda: engine.schedule_after(0.5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [1.5]

    def test_rejects_past_events(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(0.5, lambda: None)

    def test_rejects_nonfinite_time(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(float("inf"), lambda: None)

    def test_rejects_negative_delay(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_after(-1.0, lambda: None)

    def test_tiny_past_clamped_to_now(self, engine):
        # Round-off from rate integration must not crash the engine.
        engine.schedule(1.0, lambda: engine.schedule(engine.now - 1e-15, lambda: None))
        engine.run()  # no exception


class TestCancellation:
    def test_cancelled_event_not_run(self, engine):
        seen = []
        h = engine.schedule(1.0, seen.append, "x")
        h.cancel()
        engine.run()
        assert seen == []

    def test_cancel_is_idempotent(self, engine):
        h = engine.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        engine.run()

    def test_cancel_none_is_noop(self, engine):
        Engine.cancel(None)

    def test_cancel_releases_references(self, engine):
        payload = object()
        h = engine.schedule(1.0, lambda x: None, payload)
        h.cancel()
        assert h.args == ()

    def test_pending_count_excludes_cancelled(self, engine):
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h1.cancel()
        assert engine.pending_count() == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self, engine):
        seen = []
        engine.schedule(1.0, seen.append, "a")
        engine.schedule(5.0, seen.append, "b")
        engine.run(until=2.0)
        assert seen == ["a"]
        assert engine.now == 2.0

    def test_run_until_resumable(self, engine):
        seen = []
        engine.schedule(1.0, seen.append, "a")
        engine.schedule(5.0, seen.append, "b")
        engine.run(until=2.0)
        engine.run()
        assert seen == ["a", "b"]

    def test_stop_exits_loop(self, engine):
        seen = []
        engine.schedule(1.0, lambda: (seen.append("a"), engine.stop()))
        engine.schedule(2.0, seen.append, "b")
        engine.run()
        assert seen == [("a", None)] or seen == ["a"] or len(seen) == 1

    def test_max_events_guard(self, engine):
        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_not_reentrant(self, engine):
        def nested():
            engine.run()

        engine.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_executed_counter(self, engine):
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda: None)
        engine.run()
        assert engine.events_executed == 3

    def test_empty_run_returns_now(self, engine):
        assert engine.run() == 0.0

    def test_next_event_time(self, engine):
        assert engine.next_event_time() is None
        h = engine.schedule(3.0, lambda: None)
        engine.schedule(5.0, lambda: None)
        assert engine.next_event_time() == 3.0
        h.cancel()
        assert engine.next_event_time() == 5.0


class TestLazyHeapMaintenance:
    def test_pending_count_exact_after_cancel_and_run(self, engine):
        handles = [engine.schedule(float(t + 1), lambda: None) for t in range(6)]
        assert engine.pending_count() == 6
        handles[0].cancel()
        handles[3].cancel()
        assert engine.pending_count() == 4
        handles[3].cancel()  # idempotent: must not double-count
        assert engine.pending_count() == 4
        engine.run()
        assert engine.pending_count() == 0

    def test_cancel_after_run_does_not_corrupt_count(self, engine):
        h = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run(until=1.5)
        h.cancel()  # already executed: a pure no-op
        assert engine.pending_count() == 1

    def test_next_event_time_pops_cancelled_heads(self, engine):
        handles = [engine.schedule(float(t + 1), lambda: None) for t in range(5)]
        for h in handles[:4]:
            h.cancel()
        assert engine.next_event_time() == 5.0
        # The dead heads are gone, not skipped-over on every call.
        assert len(engine._heap) == 1

    def test_next_event_time_all_cancelled(self, engine):
        for t in range(3):
            engine.schedule(float(t + 1), lambda: None).cancel()
        assert engine.next_event_time() is None
        assert len(engine._heap) == 0

    def test_heap_bounded_under_heavy_cancellation(self, engine):
        # Reschedule-and-cancel churn (the scheduler's rate-change
        # pattern): without compaction the heap grows by one dead entry
        # per cycle.
        live = []
        for i in range(5000):
            h = engine.schedule(1.0 + i * 1e-6, lambda: None)
            if i % 100 == 0:
                live.append(h)
            else:
                h.cancel()
        assert engine.pending_count() == len(live)
        assert len(engine._heap) < 1000
        engine.run()
        assert engine.events_executed == len(live)

    def test_compaction_count_bounded_by_hysteresis(self, engine):
        # Regression test for compaction thrash: a churn pattern that
        # hovers just past the dead-entry threshold must not trigger an
        # O(n) rebuild on every schedule.  The floor guarantees at least
        # ~128 schedules of accumulation between rebuilds, so each
        # rebuild's O(heap) cost is paid for by the entries that caused
        # it — amortized O(1) per schedule, never per-call O(n).
        churn = 20_000
        for i in range(churn):
            engine.schedule(1.0 + i * 1e-7, lambda: None).cancel()
        assert engine.compactions > 0  # the mechanism did engage
        assert engine.compactions <= churn // 128 + 2  # ...at the amortized rate
        assert len(engine._heap) < 1024
        assert engine.pending_count() == 0

    def test_compaction_floor_resets_growth_budget(self, engine):
        # After a compaction the surviving heap sets the next floor:
        # a large live population must not be rebuilt repeatedly by
        # small amounts of follow-on churn.
        live = [engine.schedule(10.0 + i * 1e-6, lambda: None) for i in range(2000)]
        for i in range(5000):
            engine.schedule(1.0 + i * 1e-7, lambda: None).cancel()
        after_burst = engine.compactions
        # Follow-on churn below the (now raised) floor: no new rebuilds
        # until dead entries again dominate the bigger heap.
        for i in range(500):
            engine.schedule(2.0 + i * 1e-7, lambda: None).cancel()
        assert engine.compactions == after_burst
        assert engine.pending_count() == len(live)
        engine.run()
        assert engine.events_executed == len(live)

    def test_compaction_preserves_execution_order(self, engine):
        order = []
        keep = []
        for i in range(300):
            h = engine.schedule(1.0 + (i % 7) * 0.1, order.append, i)
            if i % 3 == 0:
                keep.append((h.time, i))
            else:
                h.cancel()
        engine.run()
        expected = [i for _, i in sorted(keep, key=lambda p: (p[0], p[1]))]
        assert order == expected
