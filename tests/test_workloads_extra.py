"""Tests for the extension workloads (heat, montecarlo)."""

import pytest

from repro.sim.platform import get_platform
from repro.workloads import Heat2D, MonteCarlo, get_workload


@pytest.fixture
def intel():
    return get_platform("intel-9700kf")


class TestHeat2D:
    def test_registry(self, intel):
        assert get_workload("heat", intel).name == "heat"

    def test_region_structure(self, intel):
        wl = Heat2D(n=64, sweeps=50, check_every=25)
        regions = list(wl.regions(intel, 8))
        serial = [r for r in regions if r.serial]
        assert len(regions) == 52
        assert len(serial) == 2

    def test_work_scales_with_grid(self, intel):
        small = Heat2D(n=64, sweeps=10).total_work(intel)
        big = Heat2D(n=128, sweeps=10).total_work(intel)
        assert big / small == pytest.approx(4.0, rel=0.1)

    def test_memory_bound_signature(self, intel):
        wl = Heat2D(n=64, sweeps=1, check_every=5)
        sweep_region = next(iter(wl.regions(intel, 8)))
        assert sweep_region.mem_demand > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Heat2D(n=8)
        with pytest.raises(ValueError):
            Heat2D(sweeps=0)

    def test_runs_end_to_end(self, intel):
        from repro.harness.experiment import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            platform="intel-9700kf",
            workload="heat",
            reps=1,
            seed=2,
            workload_params={"n": 512, "sweeps": 10},
        )
        rs = run_experiment(spec)
        assert rs.mean > 0


class TestMonteCarlo:
    def test_registry(self, intel):
        assert get_workload("montecarlo", intel).name == "montecarlo"

    def test_batches_are_reductions(self, intel):
        wl = MonteCarlo(paths=10_000, batches=3)
        regions = list(wl.regions(intel, 8))
        assert len(regions) == 3
        assert all(r.reduction for r in regions)

    def test_dynamic_by_default(self, intel):
        wl = MonteCarlo(paths=10_000, batches=1)
        r = next(iter(wl.regions(intel, 8)))
        assert r.schedule == "dynamic"
        assert r.chunk_work > 0

    def test_imbalance_declared(self, intel):
        wl = MonteCarlo(paths=10_000, batches=1)
        r = next(iter(wl.regions(intel, 8)))
        assert r.imbalance > 0.1

    def test_dynamic_beats_static_for_imbalanced_paths(self, intel):
        from repro.harness.experiment import ExperimentSpec, run_experiment

        base = ExperimentSpec(
            platform="intel-9700kf", workload="montecarlo", reps=2, seed=4, anomaly_prob=0.0
        )
        dyn = run_experiment(
            base.with_(workload_params={"paths": 500_000, "batches": 2, "schedule": "dynamic"})
        )
        static = run_experiment(
            base.with_(workload_params={"paths": 500_000, "batches": 2, "schedule": "static"})
        )
        assert dyn.mean < static.mean

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarlo(paths=0)
        with pytest.raises(ValueError):
            MonteCarlo(schedule="rr")
