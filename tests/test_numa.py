"""NUMA-aware scheduling tests (the §6 extrapolation substrate)."""

import pytest

from repro.sim.cpu import Topology
from repro.sim.engine import Engine
from repro.sim.scheduler import SchedParams, Scheduler
from repro.sim.task import SchedPolicy, Task, TaskKind


def fifo_noise(duration, cpu):
    return Task(
        "noise",
        policy=SchedPolicy.FIFO,
        rt_priority=90,
        kind=TaskKind.IRQ_NOISE,
        work=duration,
        affinity=frozenset({cpu}),
    )


@pytest.fixture
def numa_topo():
    # 2 nodes x 4 cores
    return Topology(n_physical=8, numa_nodes=2)


class TestNumaMigration:
    def test_local_escape_preferred(self, numa_topo):
        """A starved thread moves within its node when possible."""
        engine = Engine()
        sched = Scheduler(engine, numa_topo, rt_throttle=False)
        w = Task("w", work=1.0)
        sched.submit(w, cpu=0)
        # cpus 1-3 (same node) idle; noise blocks cpu 0
        engine.schedule(0.1, lambda: sched.submit(fifo_noise(0.5, 0), cpu=0))
        engine.run(until=0.4)  # after the starvation escape, before completion
        assert w.cpu in (1, 2, 3)

    def test_cross_node_migration_costs_more(self, numa_topo):
        """Same scenario, but the only free CPUs are on the far node."""
        params = SchedParams()
        results = {}
        for label, busy_cpus in (("local", [1, 2, 3]), ("remote", [1, 2, 3])):
            engine = Engine()
            sched = Scheduler(engine, numa_topo, params=params, rt_throttle=False)
            done = {}
            if label == "remote":
                # occupy the rest of node 0 with pinned spinners so the
                # starved thread must cross to node 1
                for c in busy_cpus:
                    sched.submit(Task(f"s{c}", affinity=frozenset({c}), pinned=True), cpu=c)
                # and node-1 spinners too, except cpu 4 left idle
                for c in (5, 6, 7):
                    sched.submit(Task(f"s{c}", affinity=frozenset({c}), pinned=True), cpu=c)
            w = Task("w", work=1.0)
            w.on_complete = lambda t: done.setdefault("w", engine.now)
            sched.submit(w, cpu=0)
            engine.schedule(0.1, lambda: sched.submit(fifo_noise(0.8, 0), cpu=0))
            engine.run()
            results[label] = done["w"]
        # remote escape pays the bigger hop latency AND runs the rest of
        # its work against remote memory
        remaining = 0.9
        expected_gap = (
            params.numa_migration_cost
            - params.migration_cost
            + remaining / params.numa_remote_speed
            - remaining / params.post_migration_speed
        )
        assert results["remote"] - results["local"] == pytest.approx(expected_gap, rel=0.05)

    def test_remote_share_discounted(self, numa_topo):
        """With equal shares available, the balancer stays on-node."""
        engine = Engine()
        sched = Scheduler(engine, numa_topo, rt_throttle=False)
        # One co-runner on local cpu 1 and one on remote cpu 4: shares
        # identical, so the discount should keep the migration local.
        sched.submit(Task("l", affinity=frozenset({1}), pinned=True), cpu=1)
        sched.submit(Task("r", affinity=frozenset({4}), pinned=True), cpu=4)
        for c in (2, 3, 5, 6, 7):
            sched.submit(Task(f"s{c}", affinity=frozenset({c}), pinned=True), cpu=c)
        w = Task("w", work=0.5)
        sched.submit(w, cpu=0)
        engine.schedule(0.0, lambda: sched.submit(fifo_noise(2.0, 0), cpu=0))
        engine.run(until=1.0)
        assert w.cpu == 1

    def test_numa_node_lookup_consistency(self, numa_topo):
        for c in range(8):
            assert numa_topo.numa_node(c) == (0 if c < 4 else 1)
