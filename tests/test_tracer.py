"""Unit tests for the OSnoise-style tracer."""

import numpy as np
import pytest

from repro.core.events import EventType
from repro.sim.noise import MicroNoiseSpec
from repro.sim.platform import get_platform
from repro.sim.task import SchedPolicy, Task, TaskKind
from repro.sim.tracer import OSNoiseTracer

from conftest import make_machine


def run_noise_burst(tracing=True, seed=0):
    """Run a quiet machine with one injected FIFO noise task."""
    m = make_machine(seed=seed, tracing=tracing)

    def start(mm):
        noise = Task(
            "burst",
            policy=SchedPolicy.FIFO,
            rt_priority=90,
            kind=TaskKind.IRQ_NOISE,
            work=0.01,
        )
        mm.scheduler.submit(noise, hint=0)
        mm.engine.schedule(0.1, mm.workload_done)

    result = m.run(start, expected_duration=0.1)
    return m, result


class TestRecording:
    def test_records_noise_task(self):
        m, result = run_noise_burst()
        assert m.tracer.macro_record_count == 1
        trace = result.trace
        assert trace is not None
        assert "burst" in trace.sources

    def test_disabled_records_nothing(self):
        m, result = run_noise_burst(tracing=False)
        assert m.tracer.macro_record_count == 0
        assert result.trace is None

    def test_recorded_duration_is_cpu_time(self):
        m, result = run_noise_burst()
        mask = result.trace.events_of_source("burst")
        assert result.trace.durations[mask][0] == pytest.approx(0.01, rel=1e-6)

    def test_etype_mapping(self):
        m, result = run_noise_burst()
        mask = result.trace.events_of_source("burst")
        assert EventType(int(result.trace.etypes[mask][0])) is EventType.IRQ


class TestOverhead:
    def test_overhead_zero_when_disabled(self):
        tracer = OSNoiseTracer(enabled=False)
        assert tracer.overhead_steal(250, MicroNoiseSpec()) == 0.0

    def test_overhead_proportional_to_event_rate(self):
        tracer = OSNoiseTracer(per_event_overhead=10e-6)
        micro = MicroNoiseSpec(softirq_prob=0.0)
        assert tracer.overhead_steal(100, micro) == pytest.approx(1e-3)
        assert tracer.overhead_steal(200, micro) == pytest.approx(2e-3)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            OSNoiseTracer(per_event_overhead=-1e-6)

    def test_tracing_slows_compute_run(self):
        # Same seed with and without tracing: traced run is slower but
        # by less than 1% (Table 1's claim).
        from repro.harness.experiment import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            platform="intel-9700kf", workload="nbody", reps=3, seed=11
        )
        on = run_experiment(spec.with_(tracing=True)).mean
        off = run_experiment(spec.with_(tracing=False)).mean
        assert off < on < off * 1.01


class TestFinalize:
    def test_micro_records_included(self):
        plat = get_platform("intel-9700kf")
        m = make_machine(plat, seed=1, tracing=True)
        m.run(lambda mm: mm.engine.schedule(0.2, mm.workload_done), expected_duration=0.2)
        # workload_cpus empty -> dyntick everywhere, still some ticks
        trace = m.tracer.finalize(0.2, (), m.noise_model, np.random.default_rng(0))
        assert "local_timer:236" in trace.sources

    def test_softirq_sources_sampled(self):
        plat = get_platform("intel-9700kf")
        m = make_machine(plat, seed=1, tracing=True)
        m.run(lambda mm: mm.engine.schedule(0.5, mm.workload_done), expected_duration=0.5)
        trace = m.tracer.finalize(
            0.5, tuple(range(8)), m.noise_model, np.random.default_rng(0)
        )
        softirq_names = {"RCU:9", "SCHED:7", "TIMER:1", "NET_RX:3"}
        assert softirq_names & set(trace.sources)

    def test_exec_time_recorded(self):
        m, result = run_noise_burst()
        assert result.trace.exec_time == pytest.approx(0.1)
