"""Unit tests for table/figure rendering."""

import pytest

from repro.harness.report import (
    InjectionRow,
    TableBuilder,
    render_injection_table,
    render_series_figure,
)


class TestTableBuilder:
    def test_render_aligns_columns(self):
        tb = TableBuilder(["a", "bbb"])
        tb.add_row(1, 2)
        tb.add_row(100, 20000)
        lines = tb.render().splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # constant width

    def test_row_width_checked(self):
        tb = TableBuilder(["a", "b"])
        with pytest.raises(ValueError):
            tb.add_row(1)

    def test_header_separator(self):
        tb = TableBuilder(["col"])
        assert "---" in tb.render()


class TestInjectionTable:
    def _row(self):
        return InjectionRow(
            label="OMP #1",
            exec_times={"Rm": 0.653, "TP": 0.644},
            deltas={"Rm": 45.5, "TP": 43.5},
            paper_exec={"Rm": 0.653, "TP": 0.644},
            paper_delta={"Rm": 45.5, "TP": 43.5},
        )

    def test_two_lines_per_row(self):
        text = render_injection_table("T", [self._row()], ["Rm", "TP"])
        lines = text.splitlines()
        assert "OMP #1" in lines[3]
        assert "+45.5%" in lines[4]

    def test_paper_rows_optional(self):
        with_ref = render_injection_table("T", [self._row()], ["Rm", "TP"], with_paper=True)
        without = render_injection_table("T", [self._row()], ["Rm", "TP"], with_paper=False)
        assert "(paper)" in with_ref
        assert "(paper)" not in without

    def test_missing_strategy_is_nan(self):
        text = render_injection_table("T", [self._row()], ["Rm", "RmHK"])
        assert "nan" in text


class TestSeriesFigure:
    def test_renders_all_series_and_points(self):
        text = render_series_figure(
            "F",
            ["st:1", "st:64"],
            {
                "sysA": [(0.034, 0.002, 0.04), (0.035, 0.001, 0.037)],
                "sysB": [(0.034, 0.0002, 0.035), (0.035, 0.0001, 0.036)],
            },
        )
        assert "sysA" in text and "sysB" in text
        assert "st:1" in text and "st:64" in text
        assert text.count("sd=") == 4

    def test_bar_lengths_scale_with_sd(self):
        text = render_series_figure(
            "F",
            ["x"],
            {"a": [(1.0, 0.010, 1.0)], "b": [(1.0, 0.001, 1.0)]},
        )
        lines = [l for l in text.splitlines() if "|" in l]
        bars = [l.split("|")[1] for l in lines]
        assert len(bars[0]) > len(bars[1])
