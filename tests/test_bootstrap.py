"""Unit tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.harness.bootstrap import BootstrapCI, mean_ci, relative_change_ci


class TestMeanCI:
    def test_interval_brackets_estimate(self):
        rng = np.random.default_rng(1)
        ci = mean_ci(rng.normal(1.0, 0.05, 50))
        assert ci.low <= ci.estimate <= ci.high

    def test_tight_sample_tight_interval(self):
        wide = mean_ci(np.random.default_rng(1).normal(1.0, 0.2, 30))
        narrow = mean_ci(np.random.default_rng(1).normal(1.0, 0.01, 30))
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_more_samples_tighter(self):
        rng = np.random.default_rng(2)
        small = mean_ci(rng.normal(1.0, 0.1, 10))
        big = mean_ci(rng.normal(1.0, 0.1, 200))
        assert (big.high - big.low) < (small.high - small.low)

    def test_deterministic_default_rng(self):
        data = [1.0, 1.1, 0.9, 1.05]
        assert mean_ci(data) == mean_ci(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_ci([1.0])
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.5)

    def test_contains(self):
        ci = BootstrapCI(1.0, 0.9, 1.1, 0.95)
        assert ci.contains(1.0)
        assert not ci.contains(2.0)


class TestRelativeChangeCI:
    def test_real_difference_is_significant(self):
        rng = np.random.default_rng(3)
        base = rng.normal(1.0, 0.02, 40)
        test = rng.normal(1.3, 0.02, 40)
        ci = relative_change_ci(test, base)
        assert ci.significant
        assert ci.estimate == pytest.approx(30.0, abs=3.0)

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(4)
        base = rng.normal(1.0, 0.05, 40)
        test = rng.normal(1.0, 0.05, 40)
        ci = relative_change_ci(test, base)
        assert not ci.significant

    def test_negative_changes_supported(self):
        rng = np.random.default_rng(5)
        base = rng.normal(1.0, 0.01, 40)
        test = rng.normal(0.8, 0.01, 40)
        ci = relative_change_ci(test, base)
        assert ci.estimate < 0
        assert ci.high < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_change_ci([1.0, 1.1], [0.0, 1.0])
        with pytest.raises(ValueError):
            relative_change_ci([1.0], [1.0, 1.1])

    def test_str_render(self):
        ci = BootstrapCI(12.34, 10.0, 15.0, 0.95)
        assert "@95%" in str(ci)


class TestOnSimulatorData:
    def test_injection_effect_is_significant(self):
        """The Δ% the tables report survives a CI check."""
        from repro.core.pipeline import NoiseInjectionPipeline
        from repro.harness.experiment import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            platform="intel-9700kf", workload="nbody", seed=42, anomaly_prob=0.25
        )
        pipe = NoiseInjectionPipeline(spec, collect_reps=15, inject_reps=8)
        pipe.build_config()
        base = run_experiment(spec.with_(reps=8, anomaly_prob=0.0, seed=77))
        inj = pipe.inject(spec.with_(reps=8, anomaly_prob=0.0))
        ci = relative_change_ci(inj.times, base.times)
        assert ci.significant
        assert ci.estimate > 0
