"""Observability-plane tests: lifecycle events, HTTP monitor, stitching.

The guarantees under test:

* every queue transition leaves exactly one append-only event, in
  commit order (``submit < lease <= renew* < complete`` per job), and
  turning events off (``REPRO_SERVICE_EVENTS=0``) leaves the table
  empty — the zero-overhead-off story;
* the HTTP monitor is read-only, answers while a campaign is being
  drained under concurrent scrapes, and its ``/healthz`` flips red
  exactly when the last live worker goes away;
* stitching attributes a sharded cell's wall time to queue-wait / run
  / merge phases with run spans on the owning worker's pid track.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.harness.experiment import ExperimentSpec
from repro.service import (
    JobQueue,
    MonitorServer,
    SharedResultStore,
    Worker,
    campaign_progress,
    render_top,
    stitch_trace,
)
from repro.service.monitor import health, metrics_text


def spec(**kw):
    kw.setdefault("platform", "intel-9700kf")
    kw.setdefault("workload", "nbody")
    kw.setdefault("reps", 3)
    kw.setdefault("seed", 42)
    return ExperimentSpec(**kw)


def submit(queue, key, **kw):
    kw.setdefault("spec", {"k": key})
    kw.setdefault("noise", None)
    kw.setdefault("label", key)
    return queue.submit(key, **kw)


def submit_sharded(queue, key, chunks, **kw):
    kw.setdefault("spec", {"k": key})
    kw.setdefault("noise", None)
    kw.setdefault("label", key)
    return queue.submit_sharded(key, chunks=chunks, **kw)


def get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


# ----------------------------------------------------------------------
class TestLifecycleEvents:
    def test_happy_path_order_and_monotonic_stamps(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        (job,) = q.lease("w1")
        assert q.renew("a", "w1") is True
        assert q.renew("a", "w1") is True
        assert q.complete("a", "w1") is True
        names = [e["event"] for e in q.events("a")]
        assert names == ["submit", "lease", "renew", "renew", "complete"]
        monos = [e["mono"] for e in q.events("a")]
        assert monos == sorted(monos)
        seqs = [e["seq"] for e in q.events("a")]
        assert seqs == sorted(seqs)
        lease_events = [e for e in q.events("a") if e["event"] == "lease"]
        assert lease_events[0]["worker"] == "w1"
        assert lease_events[0]["detail"] == "attempt 1"

    def test_retryable_failure_records_retry_lineage(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a", max_attempts=2)
        q.lease("w1")
        q.fail("a", "w1", "transient glitch")
        q.lease("w2")
        q.complete("a", "w2")
        events = q.events("a")
        fails = [e for e in events if e["event"] == "fail"]
        assert len(fails) == 1
        assert fails[0]["detail"].startswith("retryable: transient glitch")
        # second lease is attempt 2, recorded after the failure
        leases = [e for e in events if e["event"] == "lease"]
        assert leases[1]["detail"] == "attempt 2"
        assert fails[0]["seq"] < leases[1]["seq"]

    def test_terminal_failure_and_resubmit(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a", max_attempts=1)
        q.lease("w1")
        q.fail("a", "w1", "boom", retryable=False)
        events = q.events("a")
        assert [e["event"] for e in events] == ["submit", "lease", "fail"]
        assert events[-1]["detail"].startswith("terminal: boom")
        submit(q, "a")  # revival is a fresh submit event
        assert [e["event"] for e in q.events("a")][-1] == "submit"

    def test_expiry_and_quarantine_paths(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.lease("w1")
        q.report_worker_death("w1")
        q.lease("w2")
        q.report_worker_death("w2")
        names = [e["event"] for e in q.events("a")]
        # two observed deaths -> two expire events, then poison quarantine
        assert names.count("expire") == 2
        assert names[-1] == "quarantine"
        assert q.event_counts()["expire"] == 2
        # dlq retry emits a retry event and re-queues
        assert q.dlq_retry("a") is True
        assert [e["event"] for e in q.events("a")][-1] == "retry"

    def test_sharded_cell_merge_event(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 3), (3, 6)])
        for _ in range(2):
            (job,) = q.lease("w1")
            last, parent = q.complete_chunk(job.key, "w1")
        assert last and parent == "a"
        assert q.finalize_parent("a") is True
        parent_events = [e["event"] for e in q.events("a")]
        assert parent_events == ["submit", "merge"]
        chunk_events = q.events("a:0-3")
        assert [e["event"] for e in chunk_events] == ["submit", "lease", "complete"]
        # chunk keys carry the rep span, parent records the fan-out
        assert "chunk [0:3)" in chunk_events[0]["detail"]
        assert "2 chunk" in q.events("a")[0]["detail"]

    def test_events_disabled_records_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_EVENTS", "0")
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.lease("w1")
        q.complete("a", "w1")
        assert q.events() == []
        assert q.event_counts() == {}

    def test_prune_drops_the_job_events_too(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 2), (2, 4)])
        for _ in range(2):
            (job,) = q.lease("w1")
            q.complete_chunk(job.key, "w1")
        q.finalize_parent("a")
        assert q.events("a")
        assert q.prune(older_than_s=0.0) >= 1
        assert q.events("a") == []
        assert q.events("a:0-2") == []

    def test_events_survive_reopen(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.close()
        q2 = JobQueue(tmp_path / "q.sqlite")
        assert [e["event"] for e in q2.events("a")] == ["submit"]


# ----------------------------------------------------------------------
class TestCampaignProgress:
    def test_counts_cells_not_chunks(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit_sharded(q, "a", [(0, 3), (3, 6)])
        submit(q, "b")
        progress = campaign_progress(q)
        assert progress["cells_total"] == 2
        assert progress["cells_done"] == 0
        for _ in range(2):
            (job,) = q.lease("w1")
            q.complete_chunk(job.key, "w1")
        q.finalize_parent("a")
        progress = campaign_progress(q)
        assert progress["cells_done"] == 1 and progress["cells_pending"] == 1
        assert progress["rate_per_s"] > 0
        assert progress["eta_s"] is not None


# ----------------------------------------------------------------------
class TestMonitorServer:
    def test_endpoints_and_healthz_flip(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        with MonitorServer(q) as server:
            # no live worker yet: degraded
            with pytest.raises(urllib.error.HTTPError) as exc:
                get(f"{server.url}/healthz")
            assert exc.value.code == 503
            q.register_worker("w1", pid=4242)
            status, _body = get(f"{server.url}/healthz")
            assert status == 200

            status, text = get(f"{server.url}/metrics")
            assert status == 200
            assert 'repro_service_jobs{status="queued"} 1' in text
            assert "# TYPE repro_service_jobs gauge" in text
            assert "repro_service_worker_deaths_total 0" in text
            assert 'repro_service_workers{state="idle"} 1' in text
            assert 'repro_service_lifecycle_events_total{event="submit"} 1' in text

            status, text = get(f"{server.url}/status")
            doc = json.loads(text)
            assert doc["jobs"]["queued"] == 1
            assert doc["progress"]["cells_total"] == 1
            assert doc["workers"][0]["id"] == "w1"

            status, text = get(f"{server.url}/jobs/a")
            detail = json.loads(text)
            assert detail["key"] == "a" and detail["status"] == "queued"
            assert [e["event"] for e in detail["events"]] == ["submit"]

            with pytest.raises(urllib.error.HTTPError) as exc:
                get(f"{server.url}/jobs/nope")
            assert exc.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as exc:
                get(f"{server.url}/bogus")
            assert exc.value.code == 404

            # the fleet drains: the last worker deregisters, health flips
            q.deregister_worker("w1")
            with pytest.raises(urllib.error.HTTPError) as exc:
                get(f"{server.url}/healthz")
            assert exc.value.code == 503

    def test_worker_deaths_total_is_fleet_wide(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.lease("w1")
        q.report_worker_death("w1")
        # derived from the shared events table, not in-process counters
        text = metrics_text(q)
        assert "repro_service_worker_deaths_total 1" in text

    def test_health_helper_reports_reason(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        healthy, payload = health(q)
        assert healthy is False and "worker" in payload["reason"]
        q.register_worker("w1")
        healthy, payload = health(q)
        assert healthy is True and payload["workers"] == ["w1"]

    def test_concurrent_scrapes_during_sharded_campaign(self, tmp_path):
        """Scrapes from several threads never error or block a drain."""
        q = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        from repro.harness.chunkrunner import shard_ranges

        s = spec(reps=6)
        chunks = [(r.start, r.stop) for r in shard_ranges(6, 2)]
        submit_sharded(q, "shardcell", chunks, spec=s.to_dict(), label=s.label())
        submit(q, "cell2", spec=spec(reps=2, seed=7).to_dict())
        worker = Worker(q, store, worker_id="drainer", poll_s=0.01)
        failures: list = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    status, text = get(f"{server.url}/metrics", timeout=5.0)
                    assert status == 200 and "repro_service_jobs" in text
                    get(f"{server.url}/status", timeout=5.0)
                except urllib.error.HTTPError as exc:
                    if exc.code != 503:  # healthz-style degraded is fine
                        failures.append(exc)
                except Exception as exc:  # pragma: no cover - test forensics
                    failures.append(exc)

        with MonitorServer(q, store) as server:
            scrapers = [threading.Thread(target=scrape) for _ in range(3)]
            for t in scrapers:
                t.start()
            try:
                done = worker.run(drain=True)
            finally:
                stop.set()
                for t in scrapers:
                    t.join(timeout=10.0)
        assert not failures
        assert done >= 1
        assert q.job("shardcell").status == "done"
        assert q.job("cell2").status == "done"

    def test_monitor_never_writes(self, tmp_path):
        """A full scrape pass leaves the database byte-identical."""
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.lease("w1")
        q.complete("a", "w1")
        # checkpoint the WAL so file bytes are the whole state
        q._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        before = (tmp_path / "q.sqlite").read_bytes()
        with MonitorServer(q) as server:
            get(f"{server.url}/metrics")
            get(f"{server.url}/status")
            get(f"{server.url}/jobs/a")
        q._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        assert (tmp_path / "q.sqlite").read_bytes() == before


# ----------------------------------------------------------------------
class TestStitchTrace:
    def drain_sharded(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        store = SharedResultStore(tmp_path / "store")
        from repro.harness.chunkrunner import shard_ranges

        s = spec(reps=6)
        chunks = [(r.start, r.stop) for r in shard_ranges(6, 3)]
        submit_sharded(q, "cell", chunks, spec=s.to_dict(), label=s.label())
        assert Worker(q, store, worker_id="wrk", poll_s=0.01).run(drain=True) >= 1
        assert q.job("cell").status == "done"
        return q

    def test_sharded_cell_has_wait_run_merge_phases(self, tmp_path):
        q = self.drain_sharded(tmp_path)
        trace = stitch_trace(q)
        phases = [
            e for e in trace["traceEvents"] if (e.get("args") or {}).get("phase")
        ]
        names = {e["name"] for e in phases}
        assert {"queue-wait", "run", "merge"} <= names
        # run spans are attributed to the worker's pid, waits to pid 0
        worker_pid = q.workers()[0].pid
        for e in phases:
            if e["name"] == "run":
                assert e["pid"] == worker_pid
                assert e["args"]["worker"] == "wrk"
            else:
                assert e["pid"] == 0
        # the queue track is named for Perfetto
        assert any(
            e.get("ph") == "M"
            and e.get("pid") == 0
            and e["args"].get("name") == "campaign queue"
            for e in trace["traceEvents"]
        )

    def test_retry_produces_retry_wait_phase(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a", max_attempts=2)
        q.lease("w1")
        q.fail("a", "w1", "transient")
        q.lease("w1")
        q.complete("a", "w1")
        names = [
            e["name"]
            for e in stitch_trace(q)["traceEvents"]
            if (e.get("args") or {}).get("phase")
        ]
        assert names.count("run") == 2
        assert "retry-wait" in names and "queue-wait" in names

    def test_keys_filter_includes_chunks(self, tmp_path):
        q = self.drain_sharded(tmp_path)
        submit(q, "other")
        trace = stitch_trace(q, keys=["cell"])
        keys = {
            e["args"]["key"]
            for e in trace["traceEvents"]
            if (e.get("args") or {}).get("phase")
        }
        assert all(k.split(":", 1)[0] == "cell" for k in keys)
        assert len(keys) > 1  # the chunk sub-jobs ride along

    def test_joins_worker_telemetry_spans(self, tmp_path):
        q = self.drain_sharded(tmp_path)
        # a minimal per-worker telemetry log on the same mono clock
        log = tmp_path / "tel" / "events.jsonl"
        log.parent.mkdir()
        mono = q.events()[0]["mono"]
        log.write_text(
            json.dumps(
                {
                    "type": "span",
                    "name": "rep",
                    "ts": mono,
                    "dur": 0.001,
                    "pid": q.workers()[0].pid,
                    "tid": 1,
                    "id": "s1",
                    "args": {},
                }
            )
            + "\n"
        )
        trace = stitch_trace(q, telemetry_paths=[log.parent])
        assert any(e["name"] == "rep" for e in trace["traceEvents"])

    def test_missing_telemetry_paths_are_tolerated(self, tmp_path):
        q = self.drain_sharded(tmp_path)
        trace = stitch_trace(q, telemetry_paths=[tmp_path / "no-such-dir"])
        assert trace["traceEvents"]


# ----------------------------------------------------------------------
class TestRenderTop:
    def test_renders_workers_queue_and_progress(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "aaaabbbbcccc")
        q.register_worker("w1", pid=101)
        q.lease("w1")
        q.worker_heartbeat(
            "w1", state="busy", current_key="aaaabbbbcccc", reps_done=10
        )
        text = render_top(q)
        assert "service top" in text
        assert "w1" in text and "busy" in text
        assert "aaaabbbbcccc" in text
        assert "1 leased" in text
        assert "campaign:" in text

    def test_renders_dlq_line(self, tmp_path):
        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "poison")
        q.lease("w1")
        q.report_worker_death("w1")
        q.lease("w2")
        q.report_worker_death("w2")
        assert "dlq: 1 quarantined" in render_top(q)


# ----------------------------------------------------------------------
class TestMonitorCli:
    def test_status_json(self, tmp_path, capsys):
        from repro.cli import main

        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.close()
        assert (
            main(
                [
                    "service", "status", "--json",
                    "--queue", str(tmp_path / "q.sqlite"),
                    "--store", str(tmp_path / "store"),
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["jobs"]["queued"] == 1 and doc["workers"] == []

    def test_top_once(self, tmp_path, capsys):
        from repro.cli import main

        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.close()
        assert (
            main(
                [
                    "service", "top", "--once",
                    "--queue", str(tmp_path / "q.sqlite"),
                    "--store", str(tmp_path / "store"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 queued" in out

    def test_telemetry_stitch(self, tmp_path, capsys):
        from repro.cli import main

        q = JobQueue(tmp_path / "q.sqlite")
        submit(q, "a")
        q.lease("w1")
        q.complete("a", "w1")
        q.close()
        out = tmp_path / "stitched.json"
        assert (
            main(
                [
                    "telemetry", "stitch",
                    "--queue", str(tmp_path / "q.sqlite"),
                    "--out", str(out),
                ]
            )
            == 0
        )
        trace = json.loads(out.read_text())
        assert any(e["name"] == "queue-wait" for e in trace["traceEvents"])
        assert "stitched" in capsys.readouterr().out

    def test_telemetry_summarize_still_single_path(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["telemetry", "summarize"])  # no path
        with pytest.raises(SystemExit):
            main(["telemetry", "stitch", "--queue", str(tmp_path / "absent.sqlite")])
