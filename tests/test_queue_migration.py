"""Opening a first-release (PR-7-era) queue file migrates it in place.

The fixture ``tests/fixtures/queue_v7_schema.sql`` is the original
released schema — no sharding columns, no dead-letter columns, no
workers table — frozen mid-campaign with live rows.  An old queue a
user kept across an upgrade must keep working: opening it adds the
missing columns via ``ALTER TABLE`` (idempotently), and the jobs it
already held stay leasable, completable, and sweep-addressable.
"""

import sqlite3
from pathlib import Path

from repro.service import JobQueue

FIXTURE = Path(__file__).parent / "fixtures" / "queue_v7_schema.sql"

V7_ABSENT_COLUMNS = ("parent", "chunk_start", "chunk_stop", "deaths", "failure")


def make_v7_queue(tmp_path):
    path = tmp_path / "old.sqlite"
    conn = sqlite3.connect(path)
    conn.executescript(FIXTURE.read_text())
    conn.commit()
    conn.close()
    return path


def columns(path):
    conn = sqlite3.connect(path)
    try:
        return {r[1] for r in conn.execute("PRAGMA table_info(jobs)")}
    finally:
        conn.close()


class TestV7Migration:
    def test_fixture_is_really_pre_migration(self, tmp_path):
        path = make_v7_queue(tmp_path)
        cols = columns(path)
        assert not cols & set(V7_ABSENT_COLUMNS)

    def test_open_adds_missing_columns_and_workers_table(self, tmp_path):
        path = make_v7_queue(tmp_path)
        queue = JobQueue(path)
        assert set(V7_ABSENT_COLUMNS) <= columns(path)
        assert queue.workers() == []  # registry table exists and is empty

    def test_migration_is_idempotent_across_reopens(self, tmp_path):
        path = make_v7_queue(tmp_path)
        for _ in range(3):
            queue = JobQueue(path)
            queue.close()
        cols = columns(path)
        # exactly one of each migrated column, no duplicate-add errors
        assert sum(1 for c in cols if c == "deaths") == 1

    def test_pre_existing_jobs_survive_and_lease(self, tmp_path):
        path = make_v7_queue(tmp_path)
        queue = JobQueue(path)
        assert queue.counts()["queued"] == 1
        assert queue.counts()["done"] == 1
        old = queue.job("oldqueued")
        assert old.spec == {"k": "oldqueued"}
        assert old.deaths == [] and old.failure is None and old.parent is None
        (job,) = queue.lease("new-worker")
        assert job.key == "oldqueued" and job.attempts == 1
        assert queue.complete("oldqueued", "new-worker") is True
        assert queue.drained()
        # Sweeps recorded by the old schema still resolve their keys.
        assert queue.sweep("sweep-1")["keys"] == ["oldqueued", "olddone"]

    def test_migrated_queue_supports_the_new_machinery(self, tmp_path):
        """Dead-letter flow works on rows that predate its columns."""
        path = make_v7_queue(tmp_path)
        queue = JobQueue(path)
        for worker in ("w1", "w2"):
            (job,) = queue.lease(worker)
            assert job.key == "oldqueued"
            queue.report_worker_death(worker)
        job = queue.job("oldqueued")
        assert job.status == "quarantined"
        assert job.failure["reason"] == "poison"
        assert queue.dlq_retry("oldqueued") is True
        assert queue.job("oldqueued").status == "queued"


class TestV7ObservabilityMigration:
    """The PR-10 additions (events table, worker registry columns)
    also apply to a first-release queue file, idempotently."""

    def table_columns(self, path, table):
        conn = sqlite3.connect(path)
        try:
            return {r[1] for r in conn.execute(f"PRAGMA table_info({table})")}
        finally:
            conn.close()

    def test_open_creates_events_table_and_worker_columns(self, tmp_path):
        path = make_v7_queue(tmp_path)
        queue = JobQueue(path)
        assert queue.events() == []  # table exists and is empty
        cols = self.table_columns(path, "workers")
        assert {"current_key", "reps_done"} <= cols

    def test_observability_migration_is_idempotent(self, tmp_path):
        path = make_v7_queue(tmp_path)
        for _ in range(3):
            JobQueue(path).close()
        cols = self.table_columns(path, "workers")
        assert sum(1 for c in cols if c == "current_key") == 1
        assert sum(1 for c in cols if c == "reps_done") == 1
        conn = sqlite3.connect(path)
        try:
            tables = [
                r[0]
                for r in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                    " AND name='events'"
                )
            ]
        finally:
            conn.close()
        assert tables == ["events"]

    def test_old_rows_gain_lifecycle_events_going_forward(self, tmp_path):
        """Pre-event-era jobs have no history, but new transitions on
        them are recorded from the first post-upgrade write on."""
        path = make_v7_queue(tmp_path)
        queue = JobQueue(path)
        assert queue.events("oldqueued") == []
        (job,) = queue.lease("new-worker")
        queue.complete(job.key, "new-worker")
        assert [e["event"] for e in queue.events("oldqueued")] == [
            "lease",
            "complete",
        ]

    def test_migrated_registry_accepts_lease_telemetry(self, tmp_path):
        path = make_v7_queue(tmp_path)
        queue = JobQueue(path)
        queue.register_worker("w1", pid=99)
        queue.worker_heartbeat(
            "w1", state="busy", current_key="oldqueued", reps_done=5
        )
        (info,) = queue.workers()
        assert info.current_key == "oldqueued" and info.reps_done == 5
