"""Unit tests for overlap merging — the paper's §5.2 injector fix."""

import pytest

from repro.core.events import EventType
from repro.core.merge import (
    IMPROVED_THREAD_WEIGHT,
    MergeStrategy,
    RawEvent,
    merge_events,
    policy_for,
)


def ev(start, duration, etype=EventType.THREAD, source="x"):
    return RawEvent(start=start, duration=duration, etype=etype, source=source)


class TestNaive:
    def test_non_overlapping_untouched(self):
        events = [ev(0.0, 0.1), ev(0.2, 0.1)]
        merged = merge_events(events, MergeStrategy.NAIVE)
        assert len(merged) == 2

    def test_overlap_merges_to_envelope(self):
        events = [ev(0.0, 0.2), ev(0.1, 0.3)]
        merged = merge_events(events, MergeStrategy.NAIVE)
        assert len(merged) == 1
        assert merged[0].start == 0.0
        assert merged[0].duration == pytest.approx(0.4)

    def test_mixed_classes_promote_to_fifo(self):
        # The compromised behaviour: thread noise swallowed into an
        # IRQ-class envelope.
        events = [ev(0.0, 0.2, EventType.THREAD), ev(0.1, 0.05, EventType.IRQ)]
        merged = merge_events(events, MergeStrategy.NAIVE)
        assert len(merged) == 1
        assert merged[0].etype is EventType.IRQ

    def test_chain_of_overlaps_collapses(self):
        events = [ev(0.0, 0.15), ev(0.1, 0.15), ev(0.2, 0.15)]
        merged = merge_events(events, MergeStrategy.NAIVE)
        assert len(merged) == 1
        assert merged[0].duration == pytest.approx(0.35)

    def test_sources_concatenated(self):
        events = [ev(0.0, 0.2, source="a"), ev(0.1, 0.2, source="b")]
        merged = merge_events(events, MergeStrategy.NAIVE)
        assert merged[0].source == "a+b"

    def test_unsorted_input_handled(self):
        events = [ev(0.2, 0.1), ev(0.0, 0.1)]
        merged = merge_events(events, MergeStrategy.NAIVE)
        assert [e.start for e in merged] == [0.0, 0.2]


class TestImproved:
    def test_classes_never_merge_together(self):
        events = [ev(0.0, 0.2, EventType.THREAD), ev(0.1, 0.05, EventType.IRQ)]
        merged = merge_events(events, MergeStrategy.IMPROVED)
        assert len(merged) == 2
        assert {e.etype for e in merged} == {EventType.THREAD, EventType.IRQ}

    def test_same_class_overlaps_sum_busy_time(self):
        events = [ev(0.0, 0.2), ev(0.1, 0.3)]
        merged = merge_events(events, MergeStrategy.IMPROVED)
        assert len(merged) == 1
        # busy time adds (0.5), no envelope padding (0.4 envelope would
        # under-count two tasks timesharing)
        assert merged[0].duration == pytest.approx(0.5)

    def test_irq_and_softirq_share_fifo_class(self):
        events = [ev(0.0, 0.2, EventType.IRQ), ev(0.1, 0.1, EventType.SOFTIRQ)]
        merged = merge_events(events, MergeStrategy.IMPROVED)
        assert len(merged) == 1

    def test_output_sorted(self):
        events = [
            ev(0.5, 0.01, EventType.IRQ),
            ev(0.0, 0.01, EventType.THREAD),
            ev(0.2, 0.01, EventType.IRQ),
        ]
        merged = merge_events(events, MergeStrategy.IMPROVED)
        assert [e.start for e in merged] == sorted(e.start for e in merged)

    def test_empty_input(self):
        assert merge_events([], MergeStrategy.IMPROVED) == []
        assert merge_events([], MergeStrategy.NAIVE) == []


class TestPolicyAnnotation:
    def test_thread_maps_to_other(self):
        policy, prio, weight = policy_for(EventType.THREAD, MergeStrategy.NAIVE)
        assert policy == "SCHED_OTHER"
        assert prio == 0
        assert weight == 1.0

    def test_irq_maps_to_fifo(self):
        policy, prio, _ = policy_for(EventType.IRQ, MergeStrategy.IMPROVED)
        assert policy == "SCHED_FIFO"
        assert prio > 0

    def test_improved_boosts_thread_weight(self):
        _, _, weight = policy_for(EventType.THREAD, MergeStrategy.IMPROVED)
        assert weight == IMPROVED_THREAD_WEIGHT

    def test_naive_keeps_default_weight(self):
        _, _, weight = policy_for(EventType.THREAD, MergeStrategy.NAIVE)
        assert weight == 1.0


class TestAblationContrast:
    def test_naive_inflates_fifo_busy_time(self):
        # A thread burst with a tiny IRQ inside: naive turns the whole
        # envelope into FIFO; improved replays 0.02 FIFO + 0.40 OTHER.
        events = [
            ev(0.00, 0.20, EventType.THREAD),
            ev(0.10, 0.02, EventType.IRQ),
            ev(0.15, 0.20, EventType.THREAD),
        ]

        def fifo_busy(strategy):
            return sum(
                e.duration
                for e in merge_events(events, strategy)
                if e.etype is not EventType.THREAD
            )

        assert fifo_busy(MergeStrategy.NAIVE) == pytest.approx(0.35)
        assert fifo_busy(MergeStrategy.IMPROVED) == pytest.approx(0.02)
