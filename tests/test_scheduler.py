"""Unit tests for the two-class scheduler — the semantics the paper's
findings rest on."""

import pytest

from repro.sim.cpu import Topology
from repro.sim.memory import MemorySystem
from repro.sim.scheduler import SchedParams, Scheduler
from repro.sim.task import SchedPolicy, Task, TaskKind, WorkPool


def run_tasks(sched, *tasks, cpus=None):
    """Submit tasks (optionally to fixed CPUs) and run to completion."""
    done = {}

    def finish(t):
        done[t.name] = sched.engine.now

    for i, t in enumerate(tasks):
        t.on_complete = finish
        sched.submit(t, cpu=None if cpus is None else cpus[i])
    sched.engine.run()
    return done


def fifo_noise(duration, cpu=None, prio=90, name="noise"):
    return Task(
        name,
        policy=SchedPolicy.FIFO,
        rt_priority=prio,
        kind=TaskKind.IRQ_NOISE,
        work=duration,
        affinity=frozenset({cpu}) if cpu is not None else None,
    )


class TestFairShare:
    def test_single_task_full_speed(self, sched):
        done = run_tasks(sched, Task("a", work=2.0))
        assert done["a"] == pytest.approx(2.0)

    def test_two_tasks_same_cpu_share_equally(self, sched):
        a = Task("a", work=1.0, affinity=frozenset({0}), pinned=True)
        b = Task("b", work=1.0, affinity=frozenset({0}), pinned=True)
        done = run_tasks(sched, a, b)
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(2.0)

    def test_weights_bias_shares(self, sched):
        a = Task("a", work=1.0, weight=3.0, affinity=frozenset({0}), pinned=True)
        b = Task("b", work=1.0, weight=1.0, affinity=frozenset({0}), pinned=True)
        done = run_tasks(sched, a, b)
        # a runs at 0.75 until done (t=4/3), then b alone
        assert done["a"] == pytest.approx(4.0 / 3.0)
        assert done["a"] < done["b"]

    def test_early_finisher_speeds_up_survivor(self, sched):
        a = Task("a", work=1.0, affinity=frozenset({0}), pinned=True)
        b = Task("b", work=0.5, affinity=frozenset({0}), pinned=True)
        done = run_tasks(sched, a, b)
        assert done["b"] == pytest.approx(1.0)
        assert done["a"] == pytest.approx(1.5)

    def test_separate_cpus_no_interference(self, sched):
        a = Task("a", work=1.0, affinity=frozenset({0}), pinned=True)
        b = Task("b", work=1.0, affinity=frozenset({1}), pinned=True)
        done = run_tasks(sched, a, b)
        assert done["a"] == done["b"] == pytest.approx(1.0)


class TestFifoPreemption:
    def test_fifo_blocks_other_completely(self, sched_nothrottle):
        sched = sched_nothrottle
        w = Task("w", work=1.0, affinity=frozenset({0}), pinned=True)
        done = {}
        w.on_complete = lambda t: done.setdefault("w", sched.engine.now)
        sched.submit(w, cpu=0)
        sched.engine.schedule(0.2, lambda: sched.submit(fifo_noise(0.5, cpu=0), cpu=0))
        sched.engine.run()
        assert done["w"] == pytest.approx(1.5)

    def test_rt_throttle_leaves_other_a_slice(self, engine, topo4):
        sched = Scheduler(engine, topo4, rt_throttle=True)
        w = Task("w", work=10.0, affinity=frozenset({0}), pinned=True)
        sched.submit(w, cpu=0)
        # Throttled FIFO leaves 5%: long noise, workload crawls through.
        engine.schedule(0.0, lambda: sched.submit(fifo_noise(100.0, cpu=0), cpu=0))
        engine.run(until=10.0)
        w.advance(engine.now)
        assert w.total_cpu_time == pytest.approx(0.05 * 10.0, rel=0.05)

    def test_higher_priority_fifo_wins(self, sched_nothrottle):
        sched = sched_nothrottle
        lo = fifo_noise(1.0, cpu=0, prio=10, name="lo")
        hi = fifo_noise(1.0, cpu=0, prio=90, name="hi")
        done = run_tasks(sched, lo, hi, cpus=[0, 0])
        assert done["hi"] == pytest.approx(1.0)
        assert done["lo"] == pytest.approx(2.0)

    def test_equal_priority_fifo_runs_in_arrival_order(self, sched_nothrottle):
        sched = sched_nothrottle
        a = fifo_noise(1.0, cpu=0, prio=50, name="a")
        b = fifo_noise(1.0, cpu=0, prio=50, name="b")
        done = run_tasks(sched, a, b, cpus=[0, 0])
        assert done["a"] < done["b"]

    def test_preemption_counter(self, sched_nothrottle):
        sched = sched_nothrottle
        w = Task("w", affinity=frozenset({0}), pinned=True)  # spinner
        sched.submit(w, cpu=0)
        sched.submit(fifo_noise(0.1, cpu=0), cpu=0)
        assert sched.preemptions == 1


class TestSMT:
    def test_busy_siblings_slow_each_other(self, engine, topo_smt):
        sched = Scheduler(engine, topo_smt, params=SchedParams(smt_factor=0.65))
        a = Task("a", work=1.0, affinity=frozenset({0}), pinned=True)
        b = Task("b", work=1.0, affinity=frozenset({4}), pinned=True)
        done = run_tasks(sched, a, b)
        assert done["a"] == pytest.approx(1.0 / 0.65)

    def test_idle_sibling_full_speed(self, engine, topo_smt):
        sched = Scheduler(engine, topo_smt)
        a = Task("a", work=1.0, affinity=frozenset({0}), pinned=True)
        done = run_tasks(sched, a)
        assert done["a"] == pytest.approx(1.0)

    def test_sibling_finish_restores_speed(self, engine, topo_smt):
        sched = Scheduler(engine, topo_smt, params=SchedParams(smt_factor=0.5))
        a = Task("a", work=1.0, affinity=frozenset({0}), pinned=True)
        b = Task("b", work=0.25, affinity=frozenset({4}), pinned=True)
        done = run_tasks(sched, a, b)
        # b: 0.25 work at 0.5 -> done at 0.5; a: 0.25 done by then, 0.75 at speed 1
        assert done["b"] == pytest.approx(0.5)
        assert done["a"] == pytest.approx(1.25)


class TestMemory:
    def test_saturation_scales_rates(self, engine, topo4):
        sched = Scheduler(engine, topo4, memory=MemorySystem(40.0))
        tasks = [
            Task(f"t{i}", work=1.0, mem_demand=30.0, affinity=frozenset({i}), pinned=True)
            for i in range(4)
        ]
        done = run_tasks(sched, *tasks)
        # demand 120 on 40 GB/s -> scale 1/3 -> 3 seconds
        assert done["t0"] == pytest.approx(3.0, rel=1e-6)

    def test_unsaturated_runs_full_speed(self, engine, topo4):
        sched = Scheduler(engine, topo4, memory=MemorySystem(100.0))
        t = Task("t", work=1.0, mem_demand=30.0, affinity=frozenset({0}), pinned=True)
        done = run_tasks(sched, t)
        assert done["t"] == pytest.approx(1.0)

    def test_compute_tasks_unaffected_by_saturation(self, engine, topo4):
        sched = Scheduler(engine, topo4, memory=MemorySystem(10.0))
        mem = Task("m", work=1.0, mem_demand=30.0, affinity=frozenset({0}), pinned=True)
        cpu = Task("c", work=1.0, affinity=frozenset({1}), pinned=True)
        done = run_tasks(sched, mem, cpu)
        assert done["c"] == pytest.approx(1.0)
        assert done["m"] == pytest.approx(3.0, rel=0.05)

    def test_share_weighted_demand(self, engine, topo4):
        # Two streaming tasks timesharing ONE cpu only pull one task's
        # bandwidth worth, so they are not memory-throttled.
        sched = Scheduler(engine, topo4, memory=MemorySystem(30.0))
        a = Task("a", work=1.0, mem_demand=30.0, affinity=frozenset({0}), pinned=True)
        b = Task("b", work=1.0, mem_demand=30.0, affinity=frozenset({0}), pinned=True)
        done = run_tasks(sched, a, b)
        # cpu-share 0.5 each -> weighted demand 30 total -> no throttle
        assert done["a"] == pytest.approx(2.0, rel=0.05)


class TestPlacement:
    def test_prefers_idle_cpu(self, sched):
        a = Task("a")
        b = Task("b")
        c0 = sched.submit(a)
        c1 = sched.submit(b)
        assert c0 != c1

    def test_honours_single_affinity(self, sched):
        t = Task("t", affinity=frozenset({2}))
        assert sched.submit(t) == 2

    def test_rejects_cpu_outside_affinity(self, sched):
        t = Task("t", affinity=frozenset({2}))
        with pytest.raises(ValueError):
            sched.submit(t, cpu=0)

    def test_rejects_double_submit(self, sched):
        t = Task("t")
        sched.submit(t)
        with pytest.raises(ValueError):
            sched.submit(t)

    def test_idle_prefers_idle_sibling_pair(self, engine, topo_smt):
        sched = Scheduler(engine, topo_smt)
        spin = Task("s", affinity=frozenset({0}), pinned=True)
        sched.submit(spin, cpu=0)
        t = Task("t")
        # cpu 4 (sibling of busy 0) should lose to cpus 1..3
        assert sched.submit(t) in (1, 2, 3)

    def test_fifo_sticky_to_hint_even_with_idle_cpus(self, sched_nothrottle):
        sched = sched_nothrottle
        spin = Task("s", affinity=frozenset({0}), pinned=True)
        sched.submit(spin, cpu=0)
        noise = fifo_noise(0.1)
        assert sched.submit(noise, hint=0) == 0

    def test_fifo_moves_off_hint_when_rt_busy(self, sched_nothrottle):
        sched = sched_nothrottle
        first = fifo_noise(10.0, name="first")
        sched.submit(first, hint=0)
        second = fifo_noise(0.1, name="second")
        assert sched.submit(second, hint=0) != 0

    def test_other_noise_absorbed_by_idle_cpu(self, sched):
        # Housekeeping absorption: the mask leaves cpu 3 idle, OTHER
        # noise wakes there instead of timesharing a workload CPU.
        for i in range(3):
            sched.submit(Task(f"w{i}", affinity=frozenset({i}), pinned=True), cpu=i)
        noise = Task("kworker", kind=TaskKind.THREAD_NOISE, work=0.1)
        assert sched.submit(noise, hint=0) == 3

    def test_lru_spreads_ties(self, sched):
        # all cpus busy with one spinner each: OTHER noise spreads
        for i in range(4):
            sched.submit(Task(f"w{i}", affinity=frozenset({i}), pinned=True), cpu=i)
        chosen = [sched.submit(Task(f"n{i}", kind=TaskKind.THREAD_NOISE, work=10.0)) for i in range(4)]
        assert sorted(chosen) == [0, 1, 2, 3]


class TestMigration:
    def test_starved_roamer_escapes_to_idle_cpu(self, engine, topo4):
        params = SchedParams()
        sched = Scheduler(engine, topo4, params=params, rt_throttle=False)
        done = {}
        w = Task("w", work=1.0, affinity=frozenset({0, 1}))
        w.on_complete = lambda t: done.setdefault("w", engine.now)
        sched.submit(w, cpu=0)
        engine.schedule(0.2, lambda: sched.submit(fifo_noise(0.5, cpu=0), cpu=0))
        engine.run()
        # 0.2s at full speed, escape latency, then the remaining 0.8 of
        # work with cold caches on the new CPU.
        expected = (
            0.2
            + params.starvation_delay
            + params.migration_cost
            + 0.8 / params.post_migration_speed
        )
        assert done["w"] == pytest.approx(expected, rel=1e-3)
        assert sched.migrations == 1

    def test_pinned_task_waits_out_noise(self, engine, topo4):
        sched = Scheduler(engine, topo4, rt_throttle=False)
        done = {}
        w = Task("w", work=1.0, affinity=frozenset({0}), pinned=True)
        w.on_complete = lambda t: done.setdefault("w", engine.now)
        sched.submit(w, cpu=0)
        engine.schedule(0.2, lambda: sched.submit(fifo_noise(0.5, cpu=0), cpu=0))
        engine.run()
        assert done["w"] == pytest.approx(1.5)
        assert sched.migrations == 0

    def test_shared_migration_is_slower(self, engine):
        # Only busy CPUs available: escape waits for the periodic path.
        topo = Topology(n_physical=2)
        params = SchedParams()
        sched = Scheduler(engine, topo, params=params, rt_throttle=False)
        spin = Task("s", affinity=frozenset({1}), pinned=True)
        sched.submit(spin, cpu=1)
        done = {}
        w = Task("w", work=1.0)
        w.on_complete = lambda t: done.setdefault("w", engine.now)
        sched.submit(w, cpu=0)
        engine.schedule(0.0, lambda: sched.submit(fifo_noise(1.0, cpu=0), cpu=0))
        engine.run()
        # blocked for shared_migration_delay, then timeshares cpu 1
        assert done["w"] > 1.0 + params.shared_migration_delay
        assert sched.migrations >= 1

    def test_spinners_never_migrate(self, engine, topo4):
        sched = Scheduler(engine, topo4, rt_throttle=False)
        spin = Task("s", affinity=frozenset({0, 1}))
        sched.submit(spin, cpu=0)
        noise = fifo_noise(0.2, cpu=0)
        done = {}
        noise.on_complete = lambda t: done.setdefault("n", engine.now)
        sched.submit(noise, cpu=0)
        engine.run()
        assert spin.cpu == 0
        assert sched.migrations == 0


class TestPersistentTasks:
    def test_persistent_task_respawns_as_spinner(self, engine, topo4):
        sched = Scheduler(engine, topo4)
        t = Task("t", affinity=frozenset({0}), pinned=True, persistent=True)
        sched.submit(t, cpu=0)
        completions = []
        t.on_complete = lambda task: completions.append(engine.now)
        sched.assign_work(t, 1.0)
        sched.refresh(t)
        engine.run()
        assert completions == [pytest.approx(1.0)]
        assert t.alive and t.spin and t.cpu == 0

    def test_persistent_task_reusable(self, engine, topo4):
        sched = Scheduler(engine, topo4)
        t = Task("t", affinity=frozenset({0}), pinned=True, persistent=True)
        sched.submit(t, cpu=0)
        completions = []
        t.on_complete = lambda task: completions.append(engine.now)
        sched.assign_work(t, 1.0)
        sched.refresh(t)
        engine.run()
        sched.assign_work(t, 0.5)
        sched.refresh(t)
        engine.run()
        assert completions == [pytest.approx(1.0), pytest.approx(1.5)]

    def test_spin_gap_not_charged_to_new_work(self, engine, topo4):
        # Regression: an early-finishing thread spinning at the barrier
        # must not have the spin time deducted from its next region.
        sched = Scheduler(engine, topo4)
        t = Task("t", affinity=frozenset({0}), pinned=True, persistent=True)
        sched.submit(t, cpu=0)
        done = []
        t.on_complete = lambda task: done.append(engine.now)
        sched.assign_work(t, 0.1)
        sched.refresh(t)
        engine.run()
        # long spin gap
        engine.schedule(5.0, lambda: (sched.assign_work(t, 1.0), sched.refresh(t)))
        engine.run()
        assert done[-1] == pytest.approx(6.0)


class TestWorkPools:
    def test_pool_drains_at_combined_rate(self, engine, topo4):
        sched = Scheduler(engine, topo4)
        done = []
        pool = WorkPool("p", 4.0, on_drained=lambda p: done.append(engine.now))
        for i in range(4):
            t = Task(f"t{i}", affinity=frozenset({i}), pinned=True)
            t.join_pool(pool)
            sched.submit(t, cpu=i)
        sched.register_pool(pool)
        engine.run()
        assert done == [pytest.approx(1.0)]

    def test_pool_absorbs_preempted_member(self, engine, topo4):
        sched = Scheduler(engine, topo4, rt_throttle=False)
        done = []
        pool = WorkPool("p", 4.0, on_drained=lambda p: done.append(engine.now))
        for i in range(4):
            t = Task(f"t{i}", affinity=frozenset({i}), pinned=True)
            t.join_pool(pool)
            sched.submit(t, cpu=i)
        sched.register_pool(pool)
        engine.schedule(0.5, lambda: sched.submit(fifo_noise(0.2, cpu=0), cpu=0))
        engine.run()
        # one member loses 0.2 cpu-s; others soak it up: 1.0 + 0.2/4
        assert done == [pytest.approx(1.05)]

    def test_detach_pool_returns_members_to_spin(self, engine, topo4):
        sched = Scheduler(engine, topo4)
        pool = WorkPool("p", 1.0)
        members = []
        for i in range(2):
            t = Task(f"t{i}", affinity=frozenset({i}), pinned=True)
            t.join_pool(pool)
            members.append(t)
            sched.submit(t, cpu=i)
        sched.detach_pool(pool)
        assert all(t.spin for t in members)
        assert pool.members == []

    def test_drained_fires_exactly_once(self, engine, topo4):
        sched = Scheduler(engine, topo4)
        fired = []
        pool = WorkPool("p", 0.5, on_drained=lambda p: fired.append(engine.now))
        t = Task("t", affinity=frozenset({0}), pinned=True)
        t.join_pool(pool)
        sched.submit(t, cpu=0)
        sched.register_pool(pool)
        engine.run()
        assert len(fired) == 1


class TestSteal:
    def test_steal_slows_cpu(self, sched):
        sched.set_steal(0, 0.5)
        t = Task("t", work=1.0, affinity=frozenset({0}), pinned=True)
        done = run_tasks(sched, t)
        assert done["t"] == pytest.approx(2.0)

    def test_steal_bounds_checked(self, sched):
        with pytest.raises(ValueError):
            sched.set_steal(0, 1.0)
        with pytest.raises(ValueError):
            sched.set_steal(0, -0.1)


class TestNoiseHook:
    def test_noise_interval_reported(self, engine, topo4):
        records = []
        sched = Scheduler(
            engine,
            topo4,
            rt_throttle=False,
            on_noise_interval=lambda t, c, s, d: records.append((t.name, c, s, d)),
        )
        n = fifo_noise(0.25, cpu=1, name="irq")
        sched.submit(n, cpu=1)
        engine.run()
        assert len(records) == 1
        name, cpu, start, dur = records[0]
        assert name == "irq" and cpu == 1
        assert dur == pytest.approx(0.25)

    def test_workload_tasks_not_reported(self, engine, topo4):
        records = []
        sched = Scheduler(
            engine, topo4, on_noise_interval=lambda *a: records.append(a)
        )
        t = Task("w", work=0.1, affinity=frozenset({0}), pinned=True)
        sched.submit(t, cpu=0)
        engine.run()
        assert records == []

    def test_other_noise_reports_cpu_time_not_wall(self, engine, topo4):
        # Timeshared thread noise reports actual CPU consumption.
        records = []
        sched = Scheduler(
            engine, topo4, on_noise_interval=lambda t, c, s, d: records.append(d)
        )
        spin = Task("w", affinity=frozenset({0}), pinned=True)
        sched.submit(spin, cpu=0)
        noise = Task(
            "kw", kind=TaskKind.THREAD_NOISE, work=0.5, affinity=frozenset({0})
        )
        sched.submit(noise, cpu=0)
        engine.run()
        assert records == [pytest.approx(0.5)]
