"""Unit tests for trace collection (stage 1)."""

import pytest

from repro.core.collection import collect_traces
from repro.harness.experiment import ExperimentSpec


def spec(**kw):
    defaults = dict(platform="intel-9700kf", workload="nbody", model="omp", strategy="Rm", seed=21)
    defaults.update(kw)
    return ExperimentSpec(**defaults)


class TestCollection:
    def test_basic_collection(self):
        coll = collect_traces(spec(), reps=5, min_degradation=0.0, max_batches=1)
        assert len(coll.exec_times) == 5
        assert coll.worst_trace is not None
        assert coll.worst_exec_time == coll.exec_times.max()
        assert len(coll.profile) > 0

    def test_worst_case_has_meta(self):
        coll = collect_traces(spec(), reps=5, min_degradation=0.0, max_batches=1)
        assert "run" in coll.worst_trace.meta

    def test_degradation_consistent(self):
        coll = collect_traces(spec(), reps=5, min_degradation=0.0, max_batches=1)
        expected = coll.worst_exec_time / coll.mean_exec_time - 1.0
        assert coll.worst_case_degradation() == pytest.approx(expected)

    def test_tracing_forced_on(self):
        coll = collect_traces(spec(tracing=False), reps=3, min_degradation=0.0, max_batches=1)
        assert coll.worst_trace is not None

    def test_profile_contains_timer_source(self):
        coll = collect_traces(spec(), reps=3, min_degradation=0.0, max_batches=1)
        assert "local_timer:236" in coll.profile

    def test_outlier_hunt_adds_batches(self):
        # With a silent anomaly lottery the hunt must exhaust batches.
        coll = collect_traces(
            spec(anomaly_prob=0.0), reps=3, min_degradation=0.5, max_batches=3
        )
        assert len(coll.exec_times) == 9

    def test_hunt_stops_when_outlier_found(self):
        # Guaranteed anomaly: a single batch should satisfy the hunt.
        coll = collect_traces(
            spec(anomaly_prob=1.0), reps=4, min_degradation=0.02, max_batches=5
        )
        assert len(coll.exec_times) == 4

    def test_deterministic(self):
        a = collect_traces(spec(), reps=4, min_degradation=0.0, max_batches=1)
        b = collect_traces(spec(), reps=4, min_degradation=0.0, max_batches=1)
        assert a.worst_exec_time == b.worst_exec_time
        assert list(a.exec_times) == list(b.exec_times)
