"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import EventType
from repro.core.merge import MergeStrategy, RawEvent, merge_events
from repro.core.profile import build_profile
from repro.core.refine import refine_worst_case
from repro.core.trace import Trace
from repro.runtimes.base import split_static
from repro.sim.cpu import Topology
from repro.sim.engine import Engine
from repro.sim.memory import MemorySystem
from repro.sim.scheduler import Scheduler
from repro.sim.task import Task

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
event_record = st.tuples(
    st.integers(min_value=0, max_value=15),                       # cpu
    st.sampled_from([0, 1, 2]),                                   # etype
    st.sampled_from(["local_timer:236", "RCU:9", "kworker/3:1", "snapd", "Xorg"]),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),     # start
    st.floats(min_value=1e-9, max_value=1e-2, allow_nan=False),   # duration
)

trace_strategy = st.lists(event_record, min_size=0, max_size=60).map(
    lambda recs: Trace.from_records(recs, exec_time=1.0 + max((r[3] for r in recs), default=0.0))
)

raw_events = st.lists(
    st.builds(
        RawEvent,
        start=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        duration=st.floats(min_value=1e-9, max_value=0.2, allow_nan=False),
        etype=st.sampled_from(list(EventType)),
        source=st.sampled_from(["a", "b", "c"]),
    ),
    min_size=0,
    max_size=40,
)


# ----------------------------------------------------------------------
# trace invariants
# ----------------------------------------------------------------------
class TestTraceProperties:
    @given(trace_strategy)
    def test_events_always_sorted(self, trace):
        assert (np.diff(trace.starts) >= 0).all()

    @given(trace_strategy)
    def test_json_roundtrip_preserves_everything(self, trace):
        back = Trace.from_json(trace.to_json())
        assert back.n_events == trace.n_events
        np.testing.assert_allclose(back.starts, trace.starts)
        np.testing.assert_allclose(back.durations, trace.durations)
        assert [back.sources[i] for i in back.source_ids] == [
            trace.sources[i] for i in trace.source_ids
        ]

    @given(trace_strategy)
    def test_osnoise_text_roundtrip_counts(self, trace):
        parsed = Trace.parse_osnoise_text(trace.to_osnoise_text(), trace.exec_time)
        assert parsed.n_events == trace.n_events

    @given(trace_strategy)
    def test_noise_time_per_cpu_sums_to_total(self, trace):
        per_cpu = trace.noise_time_per_cpu(16)
        assert abs(per_cpu.sum() - trace.total_noise_time()) <= 1e-12 * max(
            1.0, trace.total_noise_time()
        )


# ----------------------------------------------------------------------
# refinement invariants
# ----------------------------------------------------------------------
class TestRefinementProperties:
    @given(st.lists(trace_strategy, min_size=2, max_size=6))
    @settings(deadline=None)
    def test_refinement_never_amplifies(self, traces):
        profile = build_profile(traces)
        worst = max(traces, key=lambda t: t.exec_time)
        refined = refine_worst_case(worst, profile)
        assert refined.n_events <= worst.n_events
        assert refined.total_noise_time() <= worst.total_noise_time() + 1e-12
        if refined.n_events:
            assert (refined.durations > 0).all()

    @given(st.lists(trace_strategy, min_size=2, max_size=6))
    @settings(deadline=None)
    def test_refined_events_subset_of_worst_cpus(self, traces):
        profile = build_profile(traces)
        worst = max(traces, key=lambda t: t.exec_time)
        refined = refine_worst_case(worst, profile)
        assert set(refined.cpus.tolist()) <= set(worst.cpus.tolist())


# ----------------------------------------------------------------------
# merge invariants
# ----------------------------------------------------------------------
class TestMergeProperties:
    @given(raw_events, st.sampled_from(list(MergeStrategy)))
    def test_output_sorted_and_no_fewer_than_one(self, events, strategy):
        merged = merge_events(events, strategy)
        starts = [e.start for e in merged]
        assert starts == sorted(starts)
        assert len(merged) <= len(events)
        if events:
            assert len(merged) >= 1

    @given(raw_events)
    def test_improved_conserves_busy_time(self, events):
        merged = merge_events(events, MergeStrategy.IMPROVED)
        assert sum(e.duration for e in merged) == np.float64(
            sum(e.duration for e in events)
        ) or abs(sum(e.duration for e in merged) - sum(e.duration for e in events)) < 1e-12

    @given(raw_events)
    def test_improved_never_mixes_classes(self, events):
        merged = merge_events(events, MergeStrategy.IMPROVED)
        for e in merged:
            assert "+" not in e.source or e.etype in (
                EventType.IRQ,
                EventType.SOFTIRQ,
                EventType.THREAD,
            )

    @given(raw_events)
    def test_naive_envelope_covers_inputs(self, events):
        merged = merge_events(events, MergeStrategy.NAIVE)
        if not events:
            return
        assert min(e.start for e in merged) == min(e.start for e in events)
        # naive output never overlaps within itself
        for a, b in zip(merged, merged[1:]):
            assert b.start >= a.end - 1e-12


# ----------------------------------------------------------------------
# runtime partitioning invariants
# ----------------------------------------------------------------------
class TestSplitProperties:
    @given(
        st.floats(min_value=1e-6, max_value=1e3, allow_nan=False),
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
    )
    def test_shares_sum_and_stay_positive(self, total, n, imbalance):
        shares = split_static(total, n, imbalance)
        assert len(shares) == n
        assert abs(sum(shares) - total) < 1e-9 * max(1.0, total)
        assert all(s >= 0 for s in shares)

    @given(
        st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
        st.integers(min_value=2, max_value=32),
        st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    )
    def test_spread_bounded_by_imbalance(self, total, n, imbalance):
        shares = split_static(total, n, imbalance)
        base = total / n
        for s in shares:
            assert base * (1 - imbalance) - 1e-12 <= s <= base * (1 + imbalance) + 1e-12


# ----------------------------------------------------------------------
# scheduler conservation
# ----------------------------------------------------------------------
class TestSchedulerProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),  # work
                st.integers(min_value=0, max_value=3),                      # cpu
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(deadline=None, max_examples=40)
    def test_work_is_conserved(self, jobs):
        """Total CPU time consumed equals total work submitted."""
        engine = Engine()
        sched = Scheduler(engine, Topology(n_physical=4))
        finished = []
        tasks = []
        for i, (work, cpu) in enumerate(jobs):
            t = Task(f"t{i}", work=work, affinity=frozenset({cpu}), pinned=True)
            t.on_complete = lambda task: finished.append(task)
            tasks.append(t)
            sched.submit(t, cpu=cpu)
        engine.run()
        assert len(finished) == len(jobs)
        total_in = sum(w for w, _ in jobs)
        total_out = sum(t.total_cpu_time for t in tasks)
        assert abs(total_in - total_out) < 1e-9 * max(1.0, total_in)

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=8,
        )
    )
    @settings(deadline=None, max_examples=40)
    def test_makespan_bounds(self, works):
        """Elapsed time is between max(work) and sum(work) on one CPU."""
        engine = Engine()
        sched = Scheduler(engine, Topology(n_physical=1))
        for i, w in enumerate(works):
            sched.submit(Task(f"t{i}", work=w, affinity=frozenset({0}), pinned=True), cpu=0)
        end = engine.run()
        assert end >= max(works) - 1e-9
        assert end <= sum(works) + 1e-9

    @given(st.floats(min_value=1.0, max_value=500.0), st.integers(min_value=1, max_value=6))
    @settings(deadline=None, max_examples=30)
    def test_memory_scale_in_unit_interval(self, bandwidth, n_tasks):
        mem = MemorySystem(bandwidth)
        for demand in np.linspace(0, 4 * bandwidth, 10):
            scale = mem.scale_for(float(demand) * n_tasks)
            assert 0.0 < scale <= 1.0
