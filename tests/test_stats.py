"""Unit tests for experiment statistics."""

import numpy as np
import pytest

from repro.harness.stats import outlier_mask, relative_change, summarize


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.sd == pytest.approx(1.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.median == 2.0

    def test_cov(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.cov == pytest.approx(0.5)

    def test_single_sample_zero_sd(self):
        s = summarize([5.0])
        assert s.sd == 0.0
        assert s.cov == 0.0

    def test_percentiles(self):
        s = summarize(np.linspace(1.0, 2.0, 101))
        assert s.p95 == pytest.approx(1.95)
        assert s.p99 == pytest.approx(1.99)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, 0.0])

    def test_str_render(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestRelativeChange:
    def test_increase(self):
        assert relative_change(1.1, 1.0) == pytest.approx(10.0)

    def test_decrease(self):
        assert relative_change(0.9, 1.0) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_change(1.0, 0.0)


class TestOutliers:
    def test_detects_far_outlier(self):
        times = [1.0] * 50 + [10.0]
        mask = outlier_mask(times, k=3.0)
        assert mask.sum() == 1
        assert mask[-1]

    def test_no_outliers_in_uniform(self):
        rng = np.random.default_rng(0)
        mask = outlier_mask(rng.normal(1.0, 0.001, 100), k=5.0)
        assert mask.sum() == 0

    def test_short_samples(self):
        assert outlier_mask([1.0]).sum() == 0
        assert outlier_mask([]).sum() == 0
