"""Tests for the I/O-noise extension."""

import pytest

from repro.extensions import IoBurst, IoNoiseConfig, IoNoiseInjector
from repro.sim.task import Task

from conftest import make_machine


def run_with_io(config, occupy_all=True, workload_duration=1.0, seed=0):
    """Pinned 1.0s worker on cpu 0 (+ spinners elsewhere) + I/O noise."""
    m = make_machine(seed=seed, rt_throttle=False)
    done = {}

    def start(mm):
        w = Task("w", work=workload_duration, affinity=frozenset({0}), pinned=True)
        w.on_complete = lambda t: (done.setdefault("w", mm.engine.now), mm.workload_done())
        mm.scheduler.submit(w, cpu=0)
        if occupy_all:
            for c in range(1, mm.topology.n_logical):
                mm.scheduler.submit(
                    Task(f"s{c}", affinity=frozenset({c}), pinned=True), cpu=c
                )
        injector = IoNoiseInjector(config, seed=seed)
        injector.launch(mm)
        done["injector"] = injector

    result = m.run(start, expected_duration=workload_duration)
    return result, done["injector"]


class TestConfig:
    def test_burst_validation(self):
        with pytest.raises(ValueError):
            IoBurst(start=-1, duration=0.1)
        with pytest.raises(ValueError):
            IoBurst(start=0, duration=0)
        with pytest.raises(ValueError):
            IoBurst(start=0, duration=0.1, irq_rate=100, irq_cpus=())
        with pytest.raises(ValueError):
            IoBurst(start=0, duration=0.1, flush_segments=0)

    def test_total_irq_busy(self):
        b = IoBurst(start=0, duration=0.5, irq_rate=1000, irq_duration=10e-6, irq_cpus=(0, 1))
        assert b.total_irq_busy() == pytest.approx(0.01)

    def test_total_busy_time(self):
        cfg = IoNoiseConfig(
            [IoBurst(start=0, duration=0.5, irq_rate=1000, irq_duration=10e-6,
                     irq_cpus=(0,), flush_cpu_time=0.02)]
        )
        assert cfg.total_busy_time() == pytest.approx(0.025)

    def test_json_roundtrip(self):
        cfg = IoNoiseConfig(
            [IoBurst(start=0.1, duration=0.2, irq_cpus=(0, 3), flush_cpu_time=0.01)],
            meta={"origin": "checkpoint"},
        )
        back = IoNoiseConfig.from_json(cfg.to_json())
        assert back.n_bursts == 1
        assert back.bursts[0].irq_cpus == (0, 3)
        assert back.meta["origin"] == "checkpoint"

    def test_bursts_sorted(self):
        cfg = IoNoiseConfig([IoBurst(start=0.5, duration=0.1), IoBurst(start=0.1, duration=0.1)])
        assert cfg.bursts[0].start == 0.1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IoNoiseInjector(IoNoiseConfig([]))


class TestInjection:
    def test_irq_storm_delays_target_cpu(self):
        cfg = IoNoiseConfig(
            [
                IoBurst(
                    start=0.1,
                    duration=0.4,
                    irq_rate=5000,
                    irq_duration=20e-6,
                    irq_cpus=(0,),
                    flush_cpu_time=0.0,
                )
            ]
        )
        result, injector = run_with_io(cfg)
        # 5000/s * 0.4s * 20us = 40ms of irq busy on cpu 0
        assert result.exec_time == pytest.approx(1.04, rel=0.02)
        assert injector.injected_events > 100

    def test_flushers_absorbed_by_idle_cpus(self):
        cfg = IoNoiseConfig(
            [IoBurst(start=0.0, duration=0.5, irq_rate=0, flush_cpu_time=0.3)]
        )
        quiet, _ = run_with_io(cfg, occupy_all=True)
        absorbed, _ = run_with_io(cfg, occupy_all=False)
        # with free CPUs the flusher work lands elsewhere
        assert absorbed.exec_time < quiet.exec_time

    def test_flushers_timeshare_when_machine_full(self):
        cfg = IoNoiseConfig(
            [IoBurst(start=0.0, duration=0.2, irq_rate=0, flush_cpu_time=0.4, flush_segments=8)]
        )
        result, _ = run_with_io(cfg, occupy_all=True)
        assert result.exec_time > 1.01

    def test_deterministic(self):
        cfg = IoNoiseConfig([IoBurst(start=0.1, duration=0.3, flush_cpu_time=0.1)])
        a, _ = run_with_io(cfg, seed=4)
        b, _ = run_with_io(cfg, seed=4)
        assert a.exec_time == b.exec_time

    def test_single_use(self):
        cfg = IoNoiseConfig([IoBurst(start=0.1, duration=0.1)])
        result, injector = run_with_io(cfg)
        with pytest.raises(RuntimeError):
            injector.launch(None)
